//! Accelerator and system-level configuration.

use piccolo_dram::DramConfig;

/// The six systems compared in Fig. 10, plus the cache-design variants of Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SystemKind {
    /// Graphicionado: scratchpad + perfect tiling, no active-vertex compaction in the
    /// prefetcher.
    Graphicionado,
    /// GraphDyns with a scratchpad (perfect tiling, active-vertex compaction).
    GraphDynsSpm,
    /// GraphDyns with a conventional 64 B cache (the paper's primary baseline).
    GraphDynsCache,
    /// Near-memory processing: rank-level scatter/gather in a buffer chip, with on-chip
    /// fine-grained cache support.
    Nmp,
    /// Processing-in-memory: Process/Reduce/Apply executed near-bank, no on-chip cache.
    Pim,
    /// Piccolo: Piccolo-cache + collection-extended MSHR + Piccolo-FIM.
    Piccolo,
}

impl SystemKind {
    /// All systems in the order Fig. 10 uses.
    pub const ALL: [SystemKind; 6] = [
        SystemKind::Graphicionado,
        SystemKind::GraphDynsSpm,
        SystemKind::GraphDynsCache,
        SystemKind::Nmp,
        SystemKind::Pim,
        SystemKind::Piccolo,
    ];

    /// Display name matching the figures.
    pub fn name(&self) -> &'static str {
        match self {
            SystemKind::Graphicionado => "Graphicionado",
            SystemKind::GraphDynsSpm => "GraphDyns (SPM)",
            SystemKind::GraphDynsCache => "GraphDyns (Cache)",
            SystemKind::Nmp => "NMP",
            SystemKind::Pim => "PIM",
            SystemKind::Piccolo => "Piccolo",
        }
    }

    /// Whether this system uses a scratchpad with perfect tiling.
    pub fn uses_scratchpad(&self) -> bool {
        matches!(self, SystemKind::Graphicionado | SystemKind::GraphDynsSpm)
    }
}

/// Fine-grained cache designs evaluated on top of Piccolo-FIM in Fig. 11.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CacheKind {
    /// Conventional 64 B cache.
    Conventional,
    /// Sectored cache.
    Sectored,
    /// Amoeba-cache approximation.
    Amoeba,
    /// Scrabble-cache approximation.
    Scrabble,
    /// Graphfire approximation.
    Graphfire,
    /// Piccolo-cache with LRU replacement (the default).
    PiccoloLru,
    /// Piccolo-cache with RRIP replacement.
    PiccoloRrip,
    /// Ideal 8 B-line cache.
    Line8,
}

impl CacheKind {
    /// The designs in the order Fig. 11 uses.
    pub const FIG11: [CacheKind; 7] = [
        CacheKind::Sectored,
        CacheKind::Amoeba,
        CacheKind::Scrabble,
        CacheKind::Graphfire,
        CacheKind::PiccoloLru,
        CacheKind::PiccoloRrip,
        CacheKind::Line8,
    ];

    /// Display name matching Fig. 11.
    pub fn name(&self) -> &'static str {
        match self {
            CacheKind::Conventional => "Conventional",
            CacheKind::Sectored => "Sectored",
            CacheKind::Amoeba => "Amoeba",
            CacheKind::Scrabble => "Scrabble",
            CacheKind::Graphfire => "Graphfire",
            CacheKind::PiccoloLru => "Piccolo (LRU)",
            CacheKind::PiccoloRrip => "Piccolo (RRIP)",
            CacheKind::Line8 => "8B-Line",
        }
    }
}

/// Tile-width policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TilingPolicy {
    /// No tiling (a single tile spans all destinations).
    None,
    /// Perfect tiling: the destination slice of `Vtemp` fits in on-chip memory.
    Perfect,
    /// Perfect tiling scaled by a factor (the x-axis of Fig. 17).
    Scaled(u32),
    /// Search a small set of scaling factors and keep the fastest (the "exhaustive
    /// search" the paper grants every baseline).
    Best,
}

/// Accelerator front-end configuration (Section VII-A: 8 PEs x 8-way SIMD at 1 GHz,
/// 4 MiB cache or 4.5 MiB scratchpad, 4 K-entry collection-extended MSHR).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccelConfig {
    /// Number of processing elements.
    pub pes: u32,
    /// SIMD lanes per PE.
    pub simd_lanes: u32,
    /// Accelerator clock in GHz.
    pub clock_ghz: f64,
    /// On-chip vertex memory (cache or scratchpad) in bytes.
    pub onchip_bytes: u64,
    /// Collection-extended MSHR entries.
    pub mshr_entries: usize,
    /// Whether the topology/property prefetcher is enabled (Fig. 20b disables it).
    pub prefetch: bool,
}

impl AccelConfig {
    /// The paper's configuration at full scale (4 MiB on-chip memory).
    pub fn paper_scale() -> Self {
        Self {
            pes: 8,
            simd_lanes: 8,
            clock_ghz: 1.0,
            onchip_bytes: 4 << 20,
            mshr_entries: 4096,
            prefetch: true,
        }
    }

    /// A scaled-down configuration matching a graph that was shrunk by `2^scale_shift`
    /// relative to the paper's datasets: the on-chip memory and MSHR shrink by the same
    /// factor so the working-set-to-cache ratio is preserved (see `DESIGN.md`).
    pub fn scaled(scale_shift: u32) -> Self {
        let full = Self::paper_scale();
        Self {
            onchip_bytes: (full.onchip_bytes >> scale_shift).max(8 << 10),
            // The collection-extended MSHR must cover roughly as many DRAM rows as the
            // largest tile spans, so it shrinks more slowly than the cache.
            mshr_entries: ((full.mshr_entries as u64 >> scale_shift) as usize).max(256),
            ..full
        }
    }

    /// Cycles the PE array needs to process `edges` edges and `vertices` apply
    /// operations.
    pub fn compute_cycles(&self, edges: u64, vertices: u64) -> u64 {
        let lanes = (self.pes * self.simd_lanes) as u64;
        edges.div_ceil(lanes) + vertices.div_ceil(lanes)
    }
}

impl Default for AccelConfig {
    fn default() -> Self {
        Self::scaled(8)
    }
}

/// Full simulation configuration for one run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Which system to simulate.
    pub system: SystemKind,
    /// Which on-chip cache design to use for fine-grained systems (ignored by
    /// scratchpad/PIM systems).
    pub cache: CacheKind,
    /// Accelerator front-end parameters.
    pub accel: AccelConfig,
    /// Memory system parameters.
    pub dram: DramConfig,
    /// Tiling policy.
    pub tiling: TilingPolicy,
    /// Iteration cap (the paper uses up to 40).
    pub max_iterations: u32,
}

impl SimConfig {
    /// Configuration for a named system with sensible defaults at the given scale shift.
    ///
    /// Besides shrinking the on-chip structures, the DRAM row size is reduced (to 1 KiB)
    /// so that a tile's destination slice still spans many DRAM rows, as it does at the
    /// paper's full scale — otherwise in-memory gathers would be starved of bank-level
    /// parallelism purely as an artifact of the scaling.
    pub fn for_system(system: SystemKind, scale_shift: u32) -> Self {
        let row_bytes = if scale_shift >= 6 { 1024 } else { 8192 };
        let dram = match system {
            SystemKind::Piccolo | SystemKind::Nmp => DramConfig::ddr4_2400_x16()
                .with_fim()
                .with_row_bytes(row_bytes),
            _ => DramConfig::ddr4_2400_x16().with_row_bytes(row_bytes),
        };
        let accel = AccelConfig::scaled(scale_shift);
        // Scratchpad systems get the slightly larger on-chip memory the paper grants them
        // (4.5 MiB vs 4 MiB) and must use perfect tiling.
        let (accel, tiling) = match system {
            SystemKind::Graphicionado | SystemKind::GraphDynsSpm => (
                AccelConfig {
                    onchip_bytes: accel.onchip_bytes * 9 / 8,
                    ..accel
                },
                TilingPolicy::Perfect,
            ),
            SystemKind::GraphDynsCache => (
                AccelConfig {
                    onchip_bytes: accel.onchip_bytes * 9 / 8,
                    ..accel
                },
                TilingPolicy::Best,
            ),
            SystemKind::Pim => (accel, TilingPolicy::None),
            SystemKind::Nmp | SystemKind::Piccolo => (accel, TilingPolicy::Best),
        };
        let cache = match system {
            SystemKind::GraphDynsCache => CacheKind::Conventional,
            _ => CacheKind::PiccoloLru,
        };
        Self {
            system,
            cache,
            accel,
            dram,
            tiling,
            max_iterations: 40,
        }
    }

    /// Overrides the cache design (Fig. 11).
    pub fn with_cache(mut self, cache: CacheKind) -> Self {
        self.cache = cache;
        self
    }

    /// Overrides the DRAM configuration (Fig. 15/16/20a).
    pub fn with_dram(mut self, dram: DramConfig) -> Self {
        self.dram = dram;
        self
    }

    /// Overrides the tiling policy (Fig. 17).
    pub fn with_tiling(mut self, tiling: TilingPolicy) -> Self {
        self.tiling = tiling;
        self
    }

    /// Caps the number of iterations simulated.
    pub fn with_max_iterations(mut self, max: u32) -> Self {
        self.max_iterations = max;
        self
    }

    /// Disables the prefetcher (Fig. 20b).
    pub fn without_prefetch(mut self) -> Self {
        self.accel.prefetch = false;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn system_names_and_flags() {
        assert_eq!(SystemKind::ALL.len(), 6);
        assert!(SystemKind::Graphicionado.uses_scratchpad());
        assert!(!SystemKind::Piccolo.uses_scratchpad());
        assert_eq!(SystemKind::Piccolo.name(), "Piccolo");
        assert_eq!(CacheKind::FIG11.len(), 7);
    }

    #[test]
    fn scaled_config_shrinks_onchip_memory() {
        let full = AccelConfig::paper_scale();
        let scaled = AccelConfig::scaled(8);
        assert_eq!(scaled.onchip_bytes, full.onchip_bytes >> 8);
        assert!(AccelConfig::scaled(30).onchip_bytes >= 8 << 10);
    }

    #[test]
    fn compute_cycles_scale_with_work() {
        let a = AccelConfig::paper_scale();
        assert_eq!(a.compute_cycles(64, 0), 1);
        assert_eq!(a.compute_cycles(65, 0), 2);
        assert!(a.compute_cycles(1000, 1000) > a.compute_cycles(1000, 0));
    }

    #[test]
    fn for_system_picks_expected_memory_and_tiling() {
        let pic = SimConfig::for_system(SystemKind::Piccolo, 8);
        assert!(pic.dram.fim.enabled);
        assert_eq!(pic.cache, CacheKind::PiccoloLru);
        let base = SimConfig::for_system(SystemKind::GraphDynsCache, 8);
        assert!(!base.dram.fim.enabled);
        assert_eq!(base.cache, CacheKind::Conventional);
        let spm = SimConfig::for_system(SystemKind::Graphicionado, 8);
        assert_eq!(spm.tiling, TilingPolicy::Perfect);
        let pim = SimConfig::for_system(SystemKind::Pim, 8);
        assert_eq!(pim.tiling, TilingPolicy::None);
    }
}
