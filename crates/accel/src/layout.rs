//! Physical address layout of the graph data structures in DRAM.
//!
//! The accelerator streams four arrays (Section II-B): the CSR row offsets (4 B per
//! vertex, replicated per tile), the CSR column indices + weights (8 B per edge), the
//! sequentially-read source properties `Vprop` (8 B per vertex) and the randomly-accessed
//! destination properties `Vtemp` (8 B per vertex). This module assigns each array a
//! contiguous region so the memory model sees realistic row/bank behaviour.

use piccolo_graph::{Csr, VertexId};

/// Byte sizes of the graph data elements.
pub const ROW_OFFSET_BYTES: u64 = 4;
/// Bytes per edge entry (destination id + weight).
pub const EDGE_BYTES: u64 = 8;
/// Bytes per vertex property.
pub const PROP_BYTES: u64 = 8;

/// Base addresses of the graph arrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphLayout {
    /// Base of the row-offset array.
    pub row_offsets_base: u64,
    /// Base of the column-index/weight array.
    pub columns_base: u64,
    /// Base of the `Vprop` array.
    pub vprop_base: u64,
    /// Base of the `Vtemp` array.
    pub vtemp_base: u64,
    /// One past the last byte of the layout.
    pub end: u64,
}

impl GraphLayout {
    /// Lays out the arrays of `graph` back to back, each aligned to 4 KiB.
    pub fn new(graph: &Csr) -> Self {
        const ALIGN: u64 = 4096;
        let align = |x: u64| x.div_ceil(ALIGN) * ALIGN;
        let n = graph.num_vertices() as u64;
        let e = graph.num_edges();
        let row_offsets_base = 0;
        let columns_base = align(row_offsets_base + (n + 1) * ROW_OFFSET_BYTES);
        let vprop_base = align(columns_base + e * EDGE_BYTES);
        let vtemp_base = align(vprop_base + n * PROP_BYTES);
        let end = align(vtemp_base + n * PROP_BYTES);
        Self {
            row_offsets_base,
            columns_base,
            vprop_base,
            vtemp_base,
            end,
        }
    }

    /// Address of vertex `v`'s row offset entry.
    pub fn row_offset_addr(&self, v: VertexId) -> u64 {
        self.row_offsets_base + v as u64 * ROW_OFFSET_BYTES
    }

    /// Address of edge slot `e` in the column array.
    pub fn column_addr(&self, e: u64) -> u64 {
        self.columns_base + e * EDGE_BYTES
    }

    /// Address of `Vprop[v]`.
    pub fn vprop_addr(&self, v: VertexId) -> u64 {
        self.vprop_base + v as u64 * PROP_BYTES
    }

    /// Address of `Vtemp[v]`.
    pub fn vtemp_addr(&self, v: VertexId) -> u64 {
        self.vtemp_base + v as u64 * PROP_BYTES
    }

    /// Total footprint in bytes.
    pub fn footprint(&self) -> u64 {
        self.end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_graph::generate;

    #[test]
    fn regions_do_not_overlap_and_are_ordered() {
        let g = generate::kronecker(10, 4, 1);
        let l = GraphLayout::new(&g);
        assert!(l.row_offsets_base < l.columns_base);
        assert!(l.columns_base < l.vprop_base);
        assert!(l.vprop_base < l.vtemp_base);
        assert!(l.vtemp_base < l.end);
        // The last row-offset entry stays below the column base.
        assert!(l.row_offset_addr(g.num_vertices()) <= l.columns_base);
        assert!(l.column_addr(g.num_edges() - 1) + EDGE_BYTES <= l.vprop_base);
        assert!(l.vtemp_addr(g.num_vertices() - 1) + PROP_BYTES <= l.end);
    }

    #[test]
    fn addresses_are_contiguous_within_arrays() {
        let g = generate::path(100);
        let l = GraphLayout::new(&g);
        assert_eq!(l.vtemp_addr(1) - l.vtemp_addr(0), PROP_BYTES);
        assert_eq!(l.vprop_addr(7) - l.vprop_addr(3), 4 * PROP_BYTES);
        assert_eq!(l.footprint() % 4096, 0);
    }
}
