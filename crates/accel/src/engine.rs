//! The vertex-centric simulation engine.
//!
//! [`simulate`] runs a vertex program on a graph through one of the six evaluated systems
//! and returns cycle counts plus memory/cache statistics. All iteration driving, frontier
//! management and memory-request plumbing lives in the shared [`pipeline`]
//! module; this file contributes only the *vertex-centric traversal order*
//! ([`VertexCentric`]): destination-interval tiles, per-tile frontier walks over the CSR
//! slices, and the topology/source-property streams that accompany them.
//!
//! ## Modelling simplifications (documented in `DESIGN.md`)
//!
//! * Sequential streams (topology, source properties, apply sweeps) bypass the vertex
//!   cache through stream buffers, as in Graphicionado/GraphDyns, and are issued as
//!   contiguous 64 B reads.
//! * The apply phase charges 16 B of sequential read per *touched* destination and 8 B of
//!   write per updated vertex (on-chip for scratchpad systems except the final write).
//! * `TilingPolicy::Best` performs the exhaustive search the paper grants every system:
//!   fine-grained systems simulate each candidate scaling factor and keep the fastest
//!   ([`simulate`]); conventional caches always prefer tiles that just fit. The full
//!   sweep behind the candidate set is reproduced by the Fig. 17 experiment.

use crate::config::SimConfig;
use crate::layout::{EDGE_BYTES, PROP_BYTES};
use crate::pipeline::{self, ScatterContext, ScatterGroup, Traversal};
use piccolo_algo::vcm::VertexProgram;
use piccolo_dram::Region;
use piccolo_graph::{tiling, Csr, Tiling};

pub use crate::pipeline::{resolve_tiling, RunResult};

/// Vertex-centric traversal: Algorithm 1's tile-by-tile walk of the active frontier.
#[derive(Debug)]
pub struct VertexCentric {
    tiling: Tiling,
    tile_slices: Vec<Csr>,
}

impl VertexCentric {
    /// Partitions `graph` by the tiling `cfg` resolves to.
    pub fn new(graph: &Csr, cfg: &SimConfig) -> Self {
        let tiling = resolve_tiling(cfg, graph.num_vertices());
        let tile_slices = tiling::partition_csr(graph, &tiling);
        Self {
            tiling,
            tile_slices,
        }
    }
}

impl<P: VertexProgram> Traversal<P> for VertexCentric {
    fn shape(&self) -> (u32, u32) {
        (self.tiling.tile_width(), self.tiling.num_tiles())
    }

    fn num_chunks(&self) -> usize {
        self.tile_slices.len()
    }

    fn groups(&self) -> Vec<ScatterGroup> {
        // One group per destination tile: a chunk *is* a tile, so chunk and group
        // indices coincide and destination ranges tile the vertex space in order.
        self.tiling
            .iter()
            .enumerate()
            .map(|(i, tile)| ScatterGroup {
                chunks: vec![i],
                dst_range: (tile.start, tile.end),
                cost: self.tile_slices[i].num_edges(),
            })
            .collect()
    }

    fn scatter_chunk(&self, chunk: usize, ctx: &mut ScatterContext<'_, P>) {
        let slice = &self.tile_slices[chunk];
        if slice.num_edges() == 0 {
            return;
        }
        let tile = self.tiling.tile(chunk as u32);
        ctx.begin_chunk(tile.width() as u64 * PROP_BYTES);

        let mut sources_with_edges = 0u64;
        let mut edge_bytes = 0u64;
        for &u in ctx.frontier() {
            let deg = slice.out_degree(u);
            if deg == 0 {
                continue;
            }
            sources_with_edges += 1;
            edge_bytes += deg * EDGE_BYTES;
            for (v, w) in slice.neighbors(u) {
                ctx.process_edge(u, v, w);
            }
        }

        // Topology and source-property accesses for this tile (dense frontiers
        // stream, sparse frontiers scatter — the pipeline owns that policy).
        ctx.frontier_reads(chunk, sources_with_edges);
        ctx.stream(
            ctx.layout().columns_base,
            (chunk as u64 * 64) % (1 << 20),
            edge_bytes,
            false,
            Region::TopologyCol,
        );

        ctx.end_chunk();
    }
}

/// Runs `program` on `graph` under the configuration `cfg` and returns timing and traffic
/// statistics.
///
/// [`TilingPolicy::Best`](crate::config::TilingPolicy::Best) on a fine-grained system
/// (Piccolo/NMP) performs the exhaustive search its documentation promises, via the
/// shared [`pipeline::run_with_best_search`]: the run is simulated once per
/// [`pipeline::BEST_TILING_FACTORS`] candidate and the fastest result wins (smallest
/// factor on a tie). Conventional systems always prefer factor 1 and skip the search.
pub fn simulate<P>(graph: &Csr, program: &P, cfg: &SimConfig) -> RunResult
where
    P: VertexProgram + Sync,
    P::Value: Send + Sync,
{
    pipeline::run_with_best_search(graph, program, cfg, VertexCentric::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheKind, SimConfig, SystemKind, TilingPolicy};
    use piccolo_algo::{run_vcm, Bfs, PageRank};
    use piccolo_graph::generate;

    fn small_graph() -> Csr {
        // Large enough that the destination-property array spans many DRAM rows (so FIM
        // gathers enjoy bank parallelism) and clearly exceeds the scaled on-chip cache —
        // the regime the paper evaluates.
        generate::kronecker(13, 8, 7)
    }

    fn cfg(system: SystemKind) -> SimConfig {
        SimConfig::for_system(system, 12).with_max_iterations(2)
    }

    #[test]
    fn simulation_matches_functional_iteration_count() {
        let g = generate::kronecker(10, 4, 3);
        let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(50);
        let sim = simulate(&g, &Bfs::new(0), &cfg);
        let func = run_vcm(&g, &Bfs::new(0), 50);
        assert_eq!(sim.iterations, func.iterations);
        assert_eq!(sim.edges_processed, func.total_edges_traversed());
    }

    #[test]
    fn piccolo_beats_conventional_baseline_on_pagerank() {
        let g = small_graph();
        let base = simulate(&g, &PageRank::default(), &cfg(SystemKind::GraphDynsCache));
        let pic = simulate(&g, &PageRank::default(), &cfg(SystemKind::Piccolo));
        assert!(
            pic.accel_cycles < base.accel_cycles,
            "Piccolo ({}) should beat GraphDyns Cache ({})",
            pic.accel_cycles,
            base.accel_cycles
        );
        // And it must move fewer off-chip bytes.
        assert!(pic.mem_stats.offchip_bytes < base.mem_stats.offchip_bytes);
    }

    #[test]
    fn pim_is_slower_than_cache_baseline() {
        let g = small_graph();
        let base = simulate(&g, &PageRank::default(), &cfg(SystemKind::GraphDynsCache));
        let pim = simulate(&g, &PageRank::default(), &cfg(SystemKind::Pim));
        assert!(pim.accel_cycles > base.accel_cycles);
        assert!(pim.mem_stats.pim_updates > 0);
    }

    #[test]
    fn all_systems_produce_nonzero_results() {
        let g = generate::kronecker(10, 4, 9);
        for system in SystemKind::ALL {
            let r = simulate(&g, &Bfs::new(0), &cfg(system).with_max_iterations(20));
            assert!(r.accel_cycles > 0, "{:?}", system);
            assert!(r.iterations > 0, "{:?}", system);
            assert!(r.elapsed_ns > 0.0, "{:?}", system);
        }
    }

    #[test]
    fn fine_grain_cache_variants_run() {
        let g = generate::kronecker(10, 4, 9);
        for cache in [
            CacheKind::Sectored,
            CacheKind::Line8,
            CacheKind::PiccoloRrip,
        ] {
            let c = cfg(SystemKind::Piccolo).with_cache(cache);
            let r = simulate(&g, &PageRank::default(), &c);
            assert!(r.accel_cycles > 0, "{:?}", cache);
        }
    }

    #[test]
    fn prefetch_disabled_is_slower() {
        let g = small_graph();
        let with = simulate(&g, &PageRank::default(), &cfg(SystemKind::Piccolo));
        let without = simulate(
            &g,
            &PageRank::default(),
            &cfg(SystemKind::Piccolo).without_prefetch(),
        );
        assert!(without.accel_cycles > with.accel_cycles);
    }

    #[test]
    fn scratchpad_systems_have_no_random_offchip_traffic() {
        let g = generate::kronecker(10, 4, 5);
        let r = simulate(&g, &PageRank::default(), &cfg(SystemKind::GraphDynsSpm));
        // All scatter-phase random accesses were absorbed by the scratchpad.
        assert_eq!(r.cache_stats.misses, 0);
        assert!(r.cache_stats.hits > 0);
    }

    #[test]
    fn tiling_policies_resolve_sensibly() {
        let c = SimConfig::for_system(SystemKind::Piccolo, 12);
        let t_none = resolve_tiling(&c.with_tiling(TilingPolicy::None), 10_000);
        assert_eq!(t_none.num_tiles(), 1);
        let t_perfect = resolve_tiling(&c.with_tiling(TilingPolicy::Perfect), 1_000_000);
        let t_scaled = resolve_tiling(&c.with_tiling(TilingPolicy::Scaled(4)), 1_000_000);
        assert_eq!(t_scaled.tile_width(), 4 * t_perfect.tile_width());
        let t_best = resolve_tiling(&c.with_tiling(TilingPolicy::Best), 1_000_000);
        assert!(t_best.tile_width() >= t_perfect.tile_width());
    }
}
