//! The end-to-end simulation engine.
//!
//! [`simulate`] runs a vertex program on a graph through one of the six evaluated systems
//! and returns cycle counts plus memory/cache statistics. The engine executes the
//! algorithm *functionally* (so frontiers and convergence are exact) while generating the
//! memory-access streams of Algorithm 1, which flow through the system's
//! [`MemoryPath`](crate::path::MemoryPath) (cache/MSHR/scratchpad/PIM) into the
//! command-level DRAM model.
//!
//! ## Timing model
//!
//! Per iteration the engine accumulates the DRAM service time of all generated requests
//! (per-tile batches) and the PE-array compute time; with prefetching enabled the two
//! overlap (`max`), without it they serialize (`+`), which reproduces the ~20 % penalty of
//! Fig. 20b. The graph-processing accelerators the paper builds on are throughput
//! oriented: per-request latency is hidden by deep prefetch/miss queues, so makespan
//! rather than per-access latency determines performance.
//!
//! ## Modelling simplifications (documented in `DESIGN.md`)
//!
//! * Sequential streams (topology, source properties, apply sweeps) bypass the vertex
//!   cache through stream buffers, as in Graphicionado/GraphDyns, and are issued as
//!   contiguous 64 B reads.
//! * The apply phase charges 16 B of sequential read per *touched* destination and 8 B of
//!   write per updated vertex (on-chip for scratchpad systems except the final write).
//! * `TilingPolicy::Best` uses the sweet spot each system family prefers (perfect tiles
//!   for conventional caches, 8x larger tiles for fine-grained systems); the full sweep
//!   that justifies those choices is reproduced by the Fig. 17 experiment.

use crate::config::{SimConfig, SystemKind, TilingPolicy};
use crate::layout::{GraphLayout, EDGE_BYTES, PROP_BYTES, ROW_OFFSET_BYTES};
use crate::path::MemoryPath;
use piccolo_algo::vcm::VertexProgram;
use piccolo_cache::CacheStats;
use piccolo_dram::{MemRequest, MemStats, MemorySystem, Region};
use piccolo_graph::{tiling, ActiveSet, BitSet, Csr, Tiling, VertexProps};
use serde::{Deserialize, Serialize};

/// Result of one simulated run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunResult {
    /// The simulated system.
    pub system: SystemKind,
    /// Total accelerator cycles (at the accelerator clock).
    pub accel_cycles: u64,
    /// Cycles spent in the PE array (compute component).
    pub compute_cycles: u64,
    /// DRAM busy time in nanoseconds.
    pub mem_ns: f64,
    /// Wall-clock of the run in nanoseconds (accelerator cycles / clock).
    pub elapsed_ns: f64,
    /// Iterations executed.
    pub iterations: u32,
    /// Edges processed across all iterations.
    pub edges_processed: u64,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
    /// Vertex cache/scratchpad statistics.
    pub cache_stats: CacheStats,
    /// Tile width used.
    pub tile_width: u32,
    /// Number of tiles.
    pub num_tiles: u32,
}

impl RunResult {
    /// Average off-chip bandwidth in GB/s over the run.
    pub fn offchip_bandwidth_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            0.0
        } else {
            self.mem_stats.offchip_bytes as f64 / self.elapsed_ns
        }
    }

    /// Average DRAM-internal bandwidth in GB/s over the run (data moved by FIM/NMP/PIM
    /// operations that never crosses the channel).
    pub fn internal_bandwidth_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            0.0
        } else {
            self.mem_stats.internal_bytes as f64 / self.elapsed_ns
        }
    }
}

/// Chooses the tiling for a run.
pub fn resolve_tiling(cfg: &SimConfig, num_vertices: u32) -> Tiling {
    match cfg.tiling {
        TilingPolicy::None => Tiling::single_tile(num_vertices),
        TilingPolicy::Perfect => {
            Tiling::perfect(num_vertices, cfg.accel.onchip_bytes, PROP_BYTES as u32)
        }
        TilingPolicy::Scaled(f) => {
            Tiling::scaled(num_vertices, cfg.accel.onchip_bytes, PROP_BYTES as u32, f)
        }
        TilingPolicy::Best => {
            // Sweet spots found by the Fig. 17 sweep: conventional caches want tiles that
            // just fit (factor 1-2); fine-grained caches hold only useful sectors and
            // prefer much larger tiles (factor ~8).
            let factor = match cfg.system {
                SystemKind::Nmp | SystemKind::Piccolo => 2,
                _ => 1,
            };
            Tiling::scaled(num_vertices, cfg.accel.onchip_bytes, PROP_BYTES as u32, factor)
        }
    }
}

/// Emits `bytes` of sequential stream traffic starting at `base + offset` as 64 B reads
/// (or writes), marking every byte useful.
fn stream_requests(
    out: &mut Vec<MemRequest>,
    base: u64,
    offset: u64,
    bytes: u64,
    write: bool,
    region: Region,
) {
    if bytes == 0 {
        return;
    }
    let start = (base + offset) & !63;
    let bursts = bytes.div_ceil(64);
    for i in 0..bursts {
        let addr = start + i * 64;
        out.push(if write {
            MemRequest::Write {
                addr,
                useful_bytes: 64,
                region,
            }
        } else {
            MemRequest::Read {
                addr,
                useful_bytes: 64,
                region,
            }
        });
    }
}

/// Emits the per-tile reads of the row-offset and `Vprop` entries of a *sparse* frontier.
///
/// When only a small fraction of the vertices is active, these reads are isolated 4/8 B
/// accesses scattered over large arrays (the situation Fig. 3 illustrates for BFS): a
/// conventional memory system still fetches a 64 B burst per touched line, whereas
/// Piccolo/NMP gather up to eight useful words per DRAM row through the same in-memory
/// scatter/gather machinery used for the destination properties.
fn sparse_frontier_requests(
    out: &mut Vec<MemRequest>,
    addrs: impl Iterator<Item = (u64, u32)>,
    fine_grained: bool,
    nmp: bool,
    mapper: &piccolo_dram::AddressMapper,
    items_per_op: u32,
) {
    if fine_grained {
        let mut by_row: std::collections::HashMap<piccolo_dram::RowId, Vec<u16>> =
            std::collections::HashMap::new();
        let mut order = Vec::new();
        for (addr, _useful) in addrs {
            let loc = mapper.decompose(addr);
            let row = mapper.row_id_of(&loc);
            let entry = by_row.entry(row).or_insert_with(|| {
                order.push(row);
                Vec::new()
            });
            let off = loc.word_offset();
            if !entry.contains(&off) {
                entry.push(off);
            }
        }
        for row in order {
            for chunk in by_row[&row].chunks(items_per_op.max(1) as usize) {
                out.push(if nmp {
                    MemRequest::GatherNmp {
                        row,
                        offsets: chunk.to_vec(),
                        region: Region::TopologyRow,
                    }
                } else {
                    MemRequest::GatherFim {
                        row,
                        offsets: chunk.to_vec(),
                        region: Region::TopologyRow,
                    }
                });
            }
        }
    } else {
        let mut last_line = u64::MAX;
        for (addr, useful) in addrs {
            let line = addr & !63;
            if line == last_line {
                continue;
            }
            last_line = line;
            out.push(MemRequest::Read {
                addr: line,
                useful_bytes: useful,
                region: Region::TopologyRow,
            });
        }
    }
}

/// Runs `program` on `graph` under the configuration `cfg` and returns timing and traffic
/// statistics.
pub fn simulate<P: VertexProgram>(graph: &Csr, program: &P, cfg: &SimConfig) -> RunResult {
    let n = graph.num_vertices();
    let layout = GraphLayout::new(graph);
    let tiling = resolve_tiling(cfg, n);
    let tile_slices = tiling::partition_csr(graph, &tiling);
    let mut path = MemoryPath::new(cfg.system, cfg.cache, &cfg.accel, &cfg.dram);
    let mut mem = MemorySystem::new(cfg.dram);
    let mapper = *mem.mapper();

    // Functional state (mirrors piccolo_algo::run_vcm).
    let mut props = VertexProps::new(n, program.initial_value(0.min(n.saturating_sub(1)), graph));
    for v in 0..n {
        props[v] = program.initial_value(v, graph);
    }
    let mut active = program.initial_active(graph);

    let mut total_mem_clocks = 0u64;
    let mut compute_cycles = 0u64;
    let mut accel_cycles = 0u64;
    let mut edges_processed = 0u64;
    let mut iterations = 0u32;
    let all_active_algorithm = program.algorithm().is_all_active();

    for _iter in 0..cfg.max_iterations {
        if active.is_empty() {
            break;
        }
        iterations += 1;

        let mut temp = VertexProps::new(n, program.temp_identity(0.min(n.saturating_sub(1)), graph));
        for v in 0..n {
            temp[v] = program.temp_identity(v, graph);
        }
        let mut touched = BitSet::new(n as usize);

        let mut iter_mem_clocks = 0u64;
        let mut iter_edges = 0u64;

        // Scatter phase, tile by tile (Algorithm 1 lines 1-5).
        for (tile_idx, tile) in tiling.iter().enumerate() {
            let slice = &tile_slices[tile_idx];
            if slice.num_edges() == 0 {
                continue;
            }
            let tile_bytes = tile.width() as u64 * PROP_BYTES;
            path.begin_tile(tile_bytes);

            let mut reqs: Vec<MemRequest> = Vec::new();
            let mut active_in_tile = 0u64;
            let mut sources_with_edges = 0u64;
            let mut edge_bytes = 0u64;

            for u in active.iter_sorted() {
                active_in_tile += 1;
                let deg = slice.out_degree(u);
                if deg == 0 {
                    continue;
                }
                sources_with_edges += 1;
                edge_bytes += deg * EDGE_BYTES;
                let src_prop = props[u];
                for (v, w) in slice.neighbors(u) {
                    let res = program.process(w, src_prop);
                    temp[v] = program.reduce(temp[v], res);
                    touched.insert(v as usize);
                    iter_edges += 1;
                    path.random_access(layout.vtemp_addr(v), true, &mapper, &mut reqs);
                }
            }

            // Topology and source-property accesses for this tile. Dense frontiers (PR,
            // early CC iterations) stream sequentially; sparse frontiers are isolated
            // reads scattered over the arrays and go through the fine-grained path.
            let dense_frontier = active.len() as u64 * 16 >= n as u64
                || cfg.system == SystemKind::Graphicionado;
            let row_vertices = if cfg.system == SystemKind::Graphicionado {
                n as u64
            } else {
                active_in_tile
            };
            if dense_frontier {
                stream_requests(
                    &mut reqs,
                    layout.row_offsets_base,
                    (tile_idx as u64 * n as u64 * ROW_OFFSET_BYTES) % (1 << 28),
                    row_vertices * ROW_OFFSET_BYTES,
                    false,
                    Region::TopologyRow,
                );
                stream_requests(
                    &mut reqs,
                    layout.vprop_base,
                    0,
                    sources_with_edges * PROP_BYTES,
                    false,
                    Region::PropertySequential,
                );
            } else {
                let fine = matches!(cfg.system, SystemKind::Piccolo | SystemKind::Nmp);
                let nmp = cfg.system == SystemKind::Nmp;
                sparse_frontier_requests(
                    &mut reqs,
                    active
                        .iter_sorted()
                        .flat_map(|u| {
                            [
                                (layout.row_offset_addr(u), ROW_OFFSET_BYTES as u32),
                                (layout.vprop_addr(u), PROP_BYTES as u32),
                            ]
                        }),
                    fine,
                    nmp,
                    &mapper,
                    cfg.dram.fim.items_per_op,
                );
            }
            stream_requests(
                &mut reqs,
                layout.columns_base,
                (tile_idx as u64 * 64) % (1 << 20),
                edge_bytes,
                false,
                Region::TopologyCol,
            );

            path.end_tile(&mut reqs);
            let batch = mem.service_batch(reqs);
            iter_mem_clocks += batch.elapsed_clocks();
        }

        // Apply phase (Algorithm 1 lines 6-10), functionally over every vertex, with
        // memory traffic charged for touched destinations only.
        let mut next_active = ActiveSet::new(n);
        let mut updated = 0u64;
        for v in 0..n {
            let new = program.apply(props[v], temp[v], program.vconst(v, graph));
            if program.changed(props[v], new) {
                props[v] = new;
                next_active.activate(v);
                updated += 1;
            }
        }
        let touched_count = touched.count() as u64;
        let mut apply_reqs = Vec::new();
        if path.is_scratchpad() {
            // Scratchpad accelerators apply over every vertex of every tile
            // (Algorithm 1 line 6): the whole Vprop array is re-read each iteration and
            // updated entries written back.
            stream_requests(
                &mut apply_reqs,
                layout.vprop_base,
                0,
                n as u64 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        } else {
            stream_requests(
                &mut apply_reqs,
                layout.vtemp_base,
                0,
                touched_count * 2 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        }
        stream_requests(
            &mut apply_reqs,
            layout.vprop_base,
            0,
            updated * PROP_BYTES,
            true,
            Region::PropertySequential,
        );
        if !apply_reqs.is_empty() {
            iter_mem_clocks += mem.service_batch(apply_reqs).elapsed_clocks();
        }

        // Timing: compute overlaps memory when the prefetcher is enabled.
        let iter_compute = cfg
            .accel
            .compute_cycles(iter_edges, touched_count + updated);
        let iter_mem_ns = mem.clocks_to_ns(iter_mem_clocks);
        let iter_mem_accel_cycles = (iter_mem_ns * cfg.accel.clock_ghz).ceil() as u64;
        accel_cycles += if cfg.accel.prefetch {
            iter_compute.max(iter_mem_accel_cycles)
        } else {
            iter_compute + iter_mem_accel_cycles
        };
        compute_cycles += iter_compute;
        total_mem_clocks += iter_mem_clocks;
        edges_processed += iter_edges;

        active = if all_active_algorithm && updated > 0 {
            ActiveSet::all(n)
        } else if all_active_algorithm {
            ActiveSet::new(n)
        } else {
            next_active
        };
    }

    // Final flush: dirty vertex data must reach memory.
    let mut final_reqs = Vec::new();
    path.finish(&mapper, &mut final_reqs);
    if !final_reqs.is_empty() {
        let batch = mem.service_batch(final_reqs);
        total_mem_clocks += batch.elapsed_clocks();
        accel_cycles += (mem.clocks_to_ns(batch.elapsed_clocks()) * cfg.accel.clock_ghz) as u64;
    }

    let mem_ns = mem.clocks_to_ns(total_mem_clocks);
    RunResult {
        system: cfg.system,
        accel_cycles,
        compute_cycles,
        mem_ns,
        elapsed_ns: accel_cycles as f64 / cfg.accel.clock_ghz,
        iterations,
        edges_processed,
        mem_stats: *mem.stats(),
        cache_stats: path.cache_stats(),
        tile_width: tiling.tile_width(),
        num_tiles: tiling.num_tiles(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheKind, SimConfig};
    use piccolo_algo::{run_vcm, Bfs, PageRank};
    use piccolo_graph::generate;

    fn small_graph() -> Csr {
        // Large enough that the destination-property array spans many DRAM rows (so FIM
        // gathers enjoy bank parallelism) and clearly exceeds the scaled on-chip cache —
        // the regime the paper evaluates.
        generate::kronecker(13, 8, 7)
    }

    fn cfg(system: SystemKind) -> SimConfig {
        SimConfig::for_system(system, 12).with_max_iterations(2)
    }

    #[test]
    fn simulation_matches_functional_iteration_count() {
        let g = generate::kronecker(10, 4, 3);
        let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(50);
        let sim = simulate(&g, &Bfs::new(0), &cfg);
        let func = run_vcm(&g, &Bfs::new(0), 50);
        assert_eq!(sim.iterations, func.iterations);
        assert_eq!(sim.edges_processed, func.total_edges_traversed());
    }

    #[test]
    fn piccolo_beats_conventional_baseline_on_pagerank() {
        let g = small_graph();
        let base = simulate(&g, &PageRank::default(), &cfg(SystemKind::GraphDynsCache));
        let pic = simulate(&g, &PageRank::default(), &cfg(SystemKind::Piccolo));
        assert!(
            pic.accel_cycles < base.accel_cycles,
            "Piccolo ({}) should beat GraphDyns Cache ({})",
            pic.accel_cycles,
            base.accel_cycles
        );
        // And it must move fewer off-chip bytes.
        assert!(pic.mem_stats.offchip_bytes < base.mem_stats.offchip_bytes);
    }

    #[test]
    fn pim_is_slower_than_cache_baseline() {
        let g = small_graph();
        let base = simulate(&g, &PageRank::default(), &cfg(SystemKind::GraphDynsCache));
        let pim = simulate(&g, &PageRank::default(), &cfg(SystemKind::Pim));
        assert!(pim.accel_cycles > base.accel_cycles);
        assert!(pim.mem_stats.pim_updates > 0);
    }

    #[test]
    fn all_systems_produce_nonzero_results() {
        let g = generate::kronecker(10, 4, 9);
        for system in SystemKind::ALL {
            let r = simulate(&g, &Bfs::new(0), &cfg(system).with_max_iterations(20));
            assert!(r.accel_cycles > 0, "{:?}", system);
            assert!(r.iterations > 0, "{:?}", system);
            assert!(r.elapsed_ns > 0.0, "{:?}", system);
        }
    }

    #[test]
    fn fine_grain_cache_variants_run() {
        let g = generate::kronecker(10, 4, 9);
        for cache in [CacheKind::Sectored, CacheKind::Line8, CacheKind::PiccoloRrip] {
            let c = cfg(SystemKind::Piccolo).with_cache(cache);
            let r = simulate(&g, &PageRank::default(), &c);
            assert!(r.accel_cycles > 0, "{:?}", cache);
        }
    }

    #[test]
    fn prefetch_disabled_is_slower(){
        let g = small_graph();
        let with = simulate(&g, &PageRank::default(), &cfg(SystemKind::Piccolo));
        let without = simulate(&g, &PageRank::default(), &cfg(SystemKind::Piccolo).without_prefetch());
        assert!(without.accel_cycles > with.accel_cycles);
    }

    #[test]
    fn scratchpad_systems_have_no_random_offchip_traffic() {
        let g = generate::kronecker(10, 4, 5);
        let r = simulate(&g, &PageRank::default(), &cfg(SystemKind::GraphDynsSpm));
        // All scatter-phase random accesses were absorbed by the scratchpad.
        assert_eq!(r.cache_stats.misses, 0);
        assert!(r.cache_stats.hits > 0);
    }

    #[test]
    fn tiling_policies_resolve_sensibly() {
        let c = SimConfig::for_system(SystemKind::Piccolo, 12);
        let t_none = resolve_tiling(&c.with_tiling(TilingPolicy::None), 10_000);
        assert_eq!(t_none.num_tiles(), 1);
        let t_perfect = resolve_tiling(&c.with_tiling(TilingPolicy::Perfect), 1_000_000);
        let t_scaled = resolve_tiling(&c.with_tiling(TilingPolicy::Scaled(4)), 1_000_000);
        assert_eq!(t_scaled.tile_width(), 4 * t_perfect.tile_width());
        let t_best = resolve_tiling(&c.with_tiling(TilingPolicy::Best), 1_000_000);
        assert!(t_best.tile_width() >= t_perfect.tile_width());
    }
}
