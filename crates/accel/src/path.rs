//! The on-chip memory path: how random vertex-property accesses reach DRAM.
//!
//! Each evaluated system differs mainly in this path:
//!
//! * **Conventional** (GraphDyns Cache): a 64 B-line cache; misses become 64 B reads and
//!   dirty evictions 64 B writes.
//! * **Fine-grained** (Piccolo, NMP, and every Fig. 11 cache variant): an 8 B-granular
//!   cache; misses and write-backs are collected per DRAM row by the collection-extended
//!   MSHR and emitted as FIM (Piccolo) or rank-level (NMP) scatter/gather operations.
//! * **Scratchpad** (Graphicionado, GraphDyns SPM): the destination slice lives on chip;
//!   random accesses generate no off-chip traffic (the per-tile sequential load/drain is
//!   added by the engine).
//! * **PIM**: every random update is executed near-bank ([`MemRequest::PimUpdate`]).

use crate::config::{AccelConfig, CacheKind, SystemKind};
use piccolo_cache::{
    CacheStats, CollectionMshr, MissAction, PiccoloCache, PiccoloCacheConfig, ReplacementPolicy,
    ScatterGatherKind, SectorCache, SectoredCache, SetAssocCache,
};
use piccolo_dram::{AddressMapper, DramConfig, MemRequest, Region};

/// Builds the cache model for a [`CacheKind`].
pub fn build_cache(kind: CacheKind, capacity_bytes: u64) -> Box<dyn SectorCache> {
    let ways = 8;
    match kind {
        CacheKind::Conventional => Box::new(SetAssocCache::conventional(capacity_bytes, ways)),
        CacheKind::Sectored => Box::new(SectoredCache::new(capacity_bytes, ways)),
        CacheKind::Amoeba => Box::new(SetAssocCache::amoeba(capacity_bytes, ways)),
        CacheKind::Scrabble => Box::new(SetAssocCache::scrabble(capacity_bytes, ways)),
        CacheKind::Graphfire => Box::new(SetAssocCache::graphfire(capacity_bytes, ways)),
        CacheKind::PiccoloLru => Box::new(PiccoloCache::new(PiccoloCacheConfig {
            capacity_bytes,
            ways,
            policy: ReplacementPolicy::Lru,
            ..Default::default()
        })),
        CacheKind::PiccoloRrip => Box::new(PiccoloCache::new(PiccoloCacheConfig {
            capacity_bytes,
            ways,
            policy: ReplacementPolicy::Rrip,
            ..Default::default()
        })),
        CacheKind::Line8 => Box::new(SetAssocCache::line8(capacity_bytes, ways)),
    }
}

/// The memory path of one simulated system.
pub enum MemoryPath {
    /// Conventional cache in front of plain 64 B reads/writes.
    Conventional {
        /// The vertex cache.
        cache: Box<dyn SectorCache>,
    },
    /// Fine-grained cache in front of the collection-extended MSHR.
    FineGrain {
        /// The vertex cache.
        cache: Box<dyn SectorCache>,
        /// The collection-extended MSHR.
        mshr: CollectionMshr,
    },
    /// On-chip scratchpad holding the whole destination tile.
    Scratchpad {
        /// Random accesses absorbed by the scratchpad (statistics only).
        stats: CacheStats,
    },
    /// Near-bank processing: updates run in memory.
    Pim {
        /// Statistics (every access is a "miss" that goes to memory).
        stats: CacheStats,
        /// Updates accumulated since the last operand/command burst was charged: the host
        /// must ship the source contribution and target address of every update to the
        /// in-memory units, which costs one 64 B burst per eight updates.
        pending_operands: u32,
    },
}

impl std::fmt::Debug for MemoryPath {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MemoryPath::Conventional { cache } => write!(f, "Conventional({})", cache.name()),
            MemoryPath::FineGrain { cache, .. } => write!(f, "FineGrain({})", cache.name()),
            MemoryPath::Scratchpad { .. } => write!(f, "Scratchpad"),
            MemoryPath::Pim { .. } => write!(f, "Pim"),
        }
    }
}

impl MemoryPath {
    /// Builds the memory path for a system.
    pub fn new(
        system: SystemKind,
        cache_kind: CacheKind,
        accel: &AccelConfig,
        dram: &DramConfig,
    ) -> Self {
        match system {
            SystemKind::Graphicionado | SystemKind::GraphDynsSpm => MemoryPath::Scratchpad {
                stats: CacheStats::default(),
            },
            SystemKind::Pim => MemoryPath::Pim {
                stats: CacheStats::default(),
                pending_operands: 0,
            },
            SystemKind::GraphDynsCache => MemoryPath::Conventional {
                cache: build_cache(CacheKind::Conventional, accel.onchip_bytes),
            },
            SystemKind::Nmp | SystemKind::Piccolo => {
                let kind = if system == SystemKind::Nmp {
                    ScatterGatherKind::Nmp
                } else {
                    ScatterGatherKind::Fim
                };
                MemoryPath::FineGrain {
                    cache: build_cache(cache_kind, accel.onchip_bytes),
                    mshr: CollectionMshr::new(
                        kind,
                        Region::PropertyRandom,
                        accel.mshr_entries,
                        dram.fim.items_per_op,
                    ),
                }
            }
        }
    }

    /// Performs one random property access (8 B read-modify-write when `write` is true),
    /// appending any resulting memory requests to `out`.
    pub fn random_access(
        &mut self,
        addr: u64,
        write: bool,
        mapper: &AddressMapper,
        out: &mut Vec<MemRequest>,
    ) {
        match self {
            MemoryPath::Conventional { cache } => {
                let r = cache.access(addr, 8, write);
                for action in r.actions {
                    match action {
                        MissAction::Fill {
                            addr,
                            bytes,
                            useful,
                        } => out.push(MemRequest::Read {
                            addr,
                            useful_bytes: useful.min(bytes),
                            region: Region::PropertyRandom,
                        }),
                        MissAction::Writeback { addr, bytes } => out.push(MemRequest::Write {
                            addr,
                            useful_bytes: bytes,
                            region: Region::PropertyRandom,
                        }),
                    }
                }
            }
            MemoryPath::FineGrain { cache, mshr } => {
                let r = cache.access(addr, 8, write);
                for action in r.actions {
                    match action {
                        MissAction::Fill { addr, .. } => {
                            let loc = mapper.decompose(addr);
                            out.extend(mshr.push_read(mapper.row_id_of(&loc), loc.word_offset()));
                        }
                        MissAction::Writeback { addr, .. } => {
                            let loc = mapper.decompose(addr);
                            out.extend(mshr.push_write(mapper.row_id_of(&loc), loc.word_offset()));
                        }
                    }
                }
            }
            MemoryPath::Scratchpad { stats } => {
                stats.accesses += 1;
                stats.hits += 1;
            }
            MemoryPath::Pim {
                stats,
                pending_operands,
            } => {
                stats.accesses += 1;
                stats.misses += 1;
                out.push(MemRequest::PimUpdate {
                    addr,
                    region: Region::PropertyRandom,
                });
                // Operand shipping: one 64 B command/data burst per eight updates.
                *pending_operands += 1;
                if *pending_operands == 8 {
                    *pending_operands = 0;
                    out.push(MemRequest::Write {
                        addr: addr & !63,
                        useful_bytes: 64,
                        region: Region::Other,
                    });
                }
            }
        }
    }

    /// Signals the start of a tile whose destination slice spans `tile_bytes` of `Vtemp`
    /// (used by Piccolo-cache way partitioning).
    pub fn begin_tile(&mut self, tile_bytes: u64) {
        if let MemoryPath::FineGrain { cache, .. } | MemoryPath::Conventional { cache } = self {
            let coverage = cache.tag_coverage_bytes();
            let distinct = if coverage == u64::MAX {
                1
            } else {
                tile_bytes.div_ceil(coverage).max(1)
            };
            cache.begin_tile(distinct.min(u32::MAX as u64) as u32);
        }
    }

    /// Signals the end of a tile: drains pending collected operations.
    pub fn end_tile(&mut self, out: &mut Vec<MemRequest>) {
        if let MemoryPath::FineGrain { mshr, .. } = self {
            out.extend(mshr.drain());
        }
    }

    /// Flushes everything at the end of the run (dirty data must reach memory).
    pub fn finish(&mut self, mapper: &AddressMapper, out: &mut Vec<MemRequest>) {
        match self {
            MemoryPath::Conventional { cache } => {
                for action in cache.flush() {
                    if let MissAction::Writeback { addr, bytes } = action {
                        out.push(MemRequest::Write {
                            addr,
                            useful_bytes: bytes,
                            region: Region::PropertyRandom,
                        });
                    }
                }
            }
            MemoryPath::FineGrain { cache, mshr } => {
                for action in cache.flush() {
                    if let MissAction::Writeback { addr, .. } = action {
                        let loc = mapper.decompose(addr);
                        out.extend(mshr.push_write(mapper.row_id_of(&loc), loc.word_offset()));
                    }
                }
                out.extend(mshr.drain());
            }
            MemoryPath::Scratchpad { .. } | MemoryPath::Pim { .. } => {}
        }
    }

    /// Cache statistics of the path.
    pub fn cache_stats(&self) -> CacheStats {
        match self {
            MemoryPath::Conventional { cache } | MemoryPath::FineGrain { cache, .. } => {
                *cache.stats()
            }
            MemoryPath::Scratchpad { stats } | MemoryPath::Pim { stats, .. } => *stats,
        }
    }

    /// Whether random accesses are absorbed on chip (scratchpad systems).
    pub fn is_scratchpad(&self) -> bool {
        matches!(self, MemoryPath::Scratchpad { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo_dram::DramConfig;

    fn mapper() -> AddressMapper {
        AddressMapper::new(&DramConfig::ddr4_2400_x16())
    }

    #[test]
    fn conventional_path_emits_64b_reads() {
        let accel = AccelConfig::scaled(8);
        let dram = DramConfig::ddr4_2400_x16();
        let mut p = MemoryPath::new(
            SystemKind::GraphDynsCache,
            CacheKind::Conventional,
            &accel,
            &dram,
        );
        let mut out = Vec::new();
        p.random_access(0x1_0008, true, &mapper(), &mut out);
        assert_eq!(out.len(), 1);
        assert!(matches!(
            out[0],
            MemRequest::Read {
                useful_bytes: 8,
                ..
            }
        ));
        out.clear();
        p.random_access(0x1_0008, true, &mapper(), &mut out);
        assert!(out.is_empty(), "second access hits");
    }

    #[test]
    fn piccolo_path_collects_gathers() {
        let accel = AccelConfig::scaled(8);
        let dram = DramConfig::ddr4_2400_x16().with_fim();
        let m = mapper();
        let mut p = MemoryPath::new(SystemKind::Piccolo, CacheKind::PiccoloLru, &accel, &dram);
        let mut out = Vec::new();
        // Eight cold misses within one DRAM row (same 8 KiB row, different words).
        for i in 0..8u64 {
            p.random_access(i * 8, false, &m, &mut out);
        }
        assert_eq!(
            out.len(),
            1,
            "eight same-row misses collapse into one gather"
        );
        assert!(matches!(out[0], MemRequest::GatherFim { .. }));
        // Draining with nothing pending emits nothing further.
        out.clear();
        p.end_tile(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn nmp_path_emits_nmp_requests_and_pim_emits_updates() {
        let accel = AccelConfig::scaled(8);
        let dram = DramConfig::ddr4_2400_x16().with_fim();
        let m = mapper();
        let mut nmp = MemoryPath::new(SystemKind::Nmp, CacheKind::PiccoloLru, &accel, &dram);
        let mut out = Vec::new();
        nmp.random_access(64, false, &m, &mut out);
        nmp.end_tile(&mut out);
        assert!(matches!(out.last(), Some(MemRequest::GatherNmp { .. })));

        let mut pim = MemoryPath::new(SystemKind::Pim, CacheKind::PiccoloLru, &accel, &dram);
        out.clear();
        pim.random_access(64, true, &m, &mut out);
        assert!(matches!(out[0], MemRequest::PimUpdate { .. }));
    }

    #[test]
    fn scratchpad_path_absorbs_accesses() {
        let accel = AccelConfig::scaled(8);
        let dram = DramConfig::ddr4_2400_x16();
        let m = mapper();
        let mut spm = MemoryPath::new(
            SystemKind::Graphicionado,
            CacheKind::PiccoloLru,
            &accel,
            &dram,
        );
        let mut out = Vec::new();
        for i in 0..100u64 {
            spm.random_access(i * 8, true, &m, &mut out);
        }
        assert!(out.is_empty());
        assert!(spm.is_scratchpad());
        assert_eq!(spm.cache_stats().hits, 100);
    }

    #[test]
    fn finish_writes_back_dirty_data() {
        let accel = AccelConfig::scaled(8);
        let dram = DramConfig::ddr4_2400_x16().with_fim();
        let m = mapper();
        let mut p = MemoryPath::new(SystemKind::Piccolo, CacheKind::PiccoloLru, &accel, &dram);
        let mut out = Vec::new();
        p.random_access(128, true, &m, &mut out);
        out.clear();
        p.finish(&m, &mut out);
        assert!(
            out.iter()
                .any(|r| matches!(r, MemRequest::ScatterFim { .. })),
            "dirty sector must be scattered back on finish"
        );
    }
}
