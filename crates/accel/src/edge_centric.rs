//! Edge-centric accelerator model (Section VII-H, Fig. 19a).
//!
//! Edge-centric accelerators (ForeGraph/FabGraph/MOMS style) stream the whole edge set in
//! 2-D grid blocks every iteration: topology access is perfectly sequential (no row-offset
//! indirection), source properties are read per block, and destination properties are
//! updated randomly within the block's destination tile — which is where Piccolo-FIM and
//! Piccolo-cache help, exactly as in the vertex-centric case.
//!
//! Everything but the traversal order — grid blocks instead of frontier tiles — is shared
//! with the vertex-centric engine through [`pipeline`].

use crate::config::SimConfig;
use crate::engine::{resolve_tiling, RunResult};
use crate::layout::{EDGE_BYTES, PROP_BYTES};
use crate::pipeline::{self, ScatterContext, ScatterGroup, Traversal};
use piccolo_algo::edge_centric::GridEdges;
use piccolo_algo::vcm::VertexProgram;
use piccolo_dram::Region;
use piccolo_graph::Csr;

/// Edge-centric traversal: every iteration streams all 2-D grid blocks of the edge set.
///
/// The destination tile width follows the same on-chip-capacity rule as the
/// vertex-centric engine; the source tile width is fixed at the same size (square
/// blocks).
#[derive(Debug)]
pub struct EdgeCentric {
    grid: GridEdges,
    width: u32,
}

impl EdgeCentric {
    /// Partitions `graph` into square grid blocks sized by `cfg`'s tiling rule.
    pub fn new(graph: &Csr, cfg: &SimConfig) -> Self {
        let width = resolve_tiling(cfg, graph.num_vertices())
            .tile_width()
            .max(1);
        let grid = GridEdges::new(graph, width, width);
        Self { grid, width }
    }
}

impl<P: VertexProgram> Traversal<P> for EdgeCentric {
    fn shape(&self) -> (u32, u32) {
        (self.width, self.grid.num_blocks() as u32)
    }

    fn num_chunks(&self) -> usize {
        self.grid.num_blocks() as usize
    }

    fn groups(&self) -> Vec<ScatterGroup> {
        // One group per destination-tile *column* of the grid: blocks are numbered
        // row-major over source tiles (`st * dst_tiles + dt`), so a column's chunks in
        // ascending order visit source tiles in ascending order — the serial reduction
        // order for every destination in the column.
        let src_tiles = self.grid.grid.src.num_tiles() as usize;
        let dst_tiles = self.grid.grid.dst.num_tiles() as usize;
        (0..dst_tiles)
            .map(|dt| {
                let chunks: Vec<usize> = (0..src_tiles).map(|st| st * dst_tiles + dt).collect();
                let tile = self.grid.grid.dst.tile(dt as u32);
                let cost = chunks
                    .iter()
                    .map(|&c| self.grid.block(c as u64).len() as u64)
                    .sum();
                ScatterGroup {
                    chunks,
                    dst_range: (tile.start, tile.end),
                    cost,
                }
            })
            .collect()
    }

    fn scatter_chunk(&self, chunk: usize, ctx: &mut ScatterContext<'_, P>) {
        let edges = self.grid.block(chunk as u64);
        if edges.is_empty() {
            return;
        }
        ctx.begin_chunk(self.width as u64 * PROP_BYTES);
        // The whole block's edges are streamed sequentially every iteration.
        ctx.stream(
            ctx.layout().columns_base + chunk as u64 * 64,
            0,
            edges.len() as u64 * EDGE_BYTES,
            false,
            Region::TopologyCol,
        );
        // Source properties of the block's source tile.
        ctx.stream(
            ctx.layout().vprop_base,
            0,
            self.width as u64 * PROP_BYTES,
            false,
            Region::PropertySequential,
        );
        if ctx.active().len() == ctx.num_vertices() {
            // All-active fast path (PageRank every iteration): skip the per-edge
            // membership probe — it is always true.
            for e in edges {
                ctx.process_edge(e.src, e.dst, e.weight);
            }
        } else {
            for e in edges {
                if !ctx.active().contains(e.src) {
                    continue;
                }
                ctx.process_edge(e.src, e.dst, e.weight);
            }
        }
        ctx.end_chunk();
    }
}

/// Runs `program` with edge-centric traversal on the given system configuration.
///
/// [`TilingPolicy::Best`](crate::config::TilingPolicy::Best) on a fine-grained system
/// performs the same exhaustive search as the vertex-centric engine (via
/// [`pipeline::run_with_best_search`]): every [`pipeline::BEST_TILING_FACTORS`]
/// candidate sizes the grid blocks, and the fastest result wins. Edge-centric systems
/// are tiling-sensitive by construction — the block width sets both the sequential
/// re-read volume and the destination-tile locality — so a fixed family-default factor
/// was mis-calibrated for part of the Fig. 19a rows.
pub fn simulate_edge_centric<P>(graph: &Csr, program: &P, cfg: &SimConfig) -> RunResult
where
    P: VertexProgram + Sync,
    P::Value: Send + Sync,
{
    pipeline::run_with_best_search(graph, program, cfg, EdgeCentric::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, SystemKind};
    use crate::engine::simulate;
    use piccolo_algo::PageRank;
    use piccolo_graph::generate;

    #[test]
    fn edge_centric_runs_for_baseline_and_piccolo() {
        let g = generate::kronecker(13, 6, 11);
        let base_cfg = SimConfig::for_system(SystemKind::GraphDynsCache, 12).with_max_iterations(2);
        let pic_cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(2);
        let base = simulate_edge_centric(&g, &PageRank::default(), &base_cfg);
        let pic = simulate_edge_centric(&g, &PageRank::default(), &pic_cfg);
        assert!(base.accel_cycles > 0);
        assert!(pic.accel_cycles > 0);
        assert!(
            pic.mem_stats.offchip_bytes < base.mem_stats.offchip_bytes,
            "Piccolo must reduce off-chip traffic in the edge-centric setting too"
        );
    }

    #[test]
    fn best_tiling_really_searches_on_the_edge_centric_path() {
        use crate::config::TilingPolicy;
        use crate::pipeline::BEST_TILING_FACTORS;
        let g = generate::kronecker(12, 6, 4);
        let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(2);
        assert_eq!(cfg.tiling, TilingPolicy::Best);
        let best = simulate_edge_centric(&g, &PageRank::default(), &cfg);
        let fastest_fixed = BEST_TILING_FACTORS
            .into_iter()
            .map(|f| {
                let fixed = cfg.with_tiling(TilingPolicy::Scaled(f));
                simulate_edge_centric(&g, &PageRank::default(), &fixed).accel_cycles
            })
            .min()
            .unwrap();
        assert_eq!(
            best.accel_cycles, fastest_fixed,
            "Best must match the fastest candidate factor, not a fixed family default"
        );

        // Conventional systems skip the search and keep tiles that just fit.
        let conv = SimConfig::for_system(SystemKind::GraphDynsCache, 12).with_max_iterations(2);
        let conv_best = simulate_edge_centric(&g, &PageRank::default(), &conv);
        let conv_fit = simulate_edge_centric(
            &g,
            &PageRank::default(),
            &conv.with_tiling(TilingPolicy::Scaled(1)),
        );
        assert_eq!(conv_best.accel_cycles, conv_fit.accel_cycles);
    }

    #[test]
    fn edge_centric_processes_same_edges_as_vertex_centric() {
        let g = generate::kronecker(9, 4, 2);
        let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(3);
        let vc = simulate(&g, &PageRank::default(), &cfg);
        let ec = simulate_edge_centric(&g, &PageRank::default(), &cfg);
        assert_eq!(vc.edges_processed, ec.edges_processed);
        assert_eq!(vc.iterations, ec.iterations);
    }
}
