//! Edge-centric accelerator model (Section VII-H, Fig. 19a).
//!
//! Edge-centric accelerators (ForeGraph/FabGraph/MOMS style) stream the whole edge set in
//! 2-D grid blocks every iteration: topology access is perfectly sequential (no row-offset
//! indirection), source properties are read per block, and destination properties are
//! updated randomly within the block's destination tile — which is where Piccolo-FIM and
//! Piccolo-cache help, exactly as in the vertex-centric case.

use crate::config::SimConfig;
use crate::engine::RunResult;
use crate::layout::{GraphLayout, EDGE_BYTES, PROP_BYTES};
use crate::path::MemoryPath;
use piccolo_algo::edge_centric::GridEdges;
use piccolo_algo::vcm::VertexProgram;
use piccolo_dram::{MemRequest, MemorySystem, Region};
use piccolo_graph::{ActiveSet, BitSet, Csr, VertexProps};

/// Emits a sequential stream as 64 B requests.
fn stream(out: &mut Vec<MemRequest>, base: u64, bytes: u64, write: bool, region: Region) {
    let bursts = bytes.div_ceil(64);
    for i in 0..bursts {
        let addr = (base & !63) + i * 64;
        out.push(if write {
            MemRequest::Write {
                addr,
                useful_bytes: 64,
                region,
            }
        } else {
            MemRequest::Read {
                addr,
                useful_bytes: 64,
                region,
            }
        });
    }
}

/// Runs `program` with edge-centric traversal on the given system configuration.
///
/// The destination tile width follows the same on-chip-capacity rule as the vertex-centric
/// engine; the source tile width is fixed at the same size (square blocks).
pub fn simulate_edge_centric<P: VertexProgram>(
    graph: &Csr,
    program: &P,
    cfg: &SimConfig,
) -> RunResult {
    let n = graph.num_vertices();
    let layout = GraphLayout::new(graph);
    let tiling = crate::engine::resolve_tiling(cfg, n);
    let width = tiling.tile_width().max(1);
    let grid = GridEdges::new(graph, width, width);
    let mut path = MemoryPath::new(cfg.system, cfg.cache, &cfg.accel, &cfg.dram);
    let mut mem = MemorySystem::new(cfg.dram);
    let mapper = *mem.mapper();

    let mut props = VertexProps::new(n, program.initial_value(0.min(n.saturating_sub(1)), graph));
    for v in 0..n {
        props[v] = program.initial_value(v, graph);
    }
    let mut active = program.initial_active(graph);

    let mut accel_cycles = 0u64;
    let mut compute_cycles = 0u64;
    let mut total_mem_clocks = 0u64;
    let mut edges_processed = 0u64;
    let mut iterations = 0u32;
    let all_active = program.algorithm().is_all_active();

    for _ in 0..cfg.max_iterations {
        if active.is_empty() {
            break;
        }
        iterations += 1;
        let mut temp = VertexProps::new(n, program.temp_identity(0.min(n.saturating_sub(1)), graph));
        for v in 0..n {
            temp[v] = program.temp_identity(v, graph);
        }
        let mut touched = BitSet::new(n as usize);
        let mut iter_mem_clocks = 0u64;
        let mut iter_edges = 0u64;

        for block in 0..grid.num_blocks() {
            let edges = grid.block(block);
            if edges.is_empty() {
                continue;
            }
            path.begin_tile(width as u64 * PROP_BYTES);
            let mut reqs = Vec::new();
            // The whole block's edges are streamed sequentially every iteration.
            stream(
                &mut reqs,
                layout.columns_base + block * 64,
                edges.len() as u64 * EDGE_BYTES,
                false,
                Region::TopologyCol,
            );
            // Source properties of the block's source tile.
            stream(
                &mut reqs,
                layout.vprop_base,
                width as u64 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
            for e in edges {
                if !active.contains(e.src) {
                    continue;
                }
                let res = program.process(e.weight, props[e.src]);
                temp[e.dst] = program.reduce(temp[e.dst], res);
                touched.insert(e.dst as usize);
                iter_edges += 1;
                path.random_access(layout.vtemp_addr(e.dst), true, &mapper, &mut reqs);
            }
            path.end_tile(&mut reqs);
            iter_mem_clocks += mem.service_batch(reqs).elapsed_clocks();
        }

        // Apply phase.
        let mut next_active = ActiveSet::new(n);
        let mut updated = 0u64;
        for v in 0..n {
            let new = program.apply(props[v], temp[v], program.vconst(v, graph));
            if program.changed(props[v], new) {
                props[v] = new;
                next_active.activate(v);
                updated += 1;
            }
        }
        let mut apply_reqs = Vec::new();
        if !path.is_scratchpad() {
            stream(
                &mut apply_reqs,
                layout.vtemp_base,
                touched.count() as u64 * 2 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        }
        stream(
            &mut apply_reqs,
            layout.vprop_base,
            updated * PROP_BYTES,
            true,
            Region::PropertySequential,
        );
        if !apply_reqs.is_empty() {
            iter_mem_clocks += mem.service_batch(apply_reqs).elapsed_clocks();
        }

        let iter_compute = cfg
            .accel
            .compute_cycles(iter_edges, touched.count() as u64 + updated);
        let iter_mem_cycles = (mem.clocks_to_ns(iter_mem_clocks) * cfg.accel.clock_ghz).ceil() as u64;
        accel_cycles += if cfg.accel.prefetch {
            iter_compute.max(iter_mem_cycles)
        } else {
            iter_compute + iter_mem_cycles
        };
        compute_cycles += iter_compute;
        total_mem_clocks += iter_mem_clocks;
        edges_processed += iter_edges;

        active = if all_active && updated > 0 {
            ActiveSet::all(n)
        } else if all_active {
            ActiveSet::new(n)
        } else {
            next_active
        };
    }

    let mut final_reqs = Vec::new();
    path.finish(&mapper, &mut final_reqs);
    if !final_reqs.is_empty() {
        let b = mem.service_batch(final_reqs);
        total_mem_clocks += b.elapsed_clocks();
        accel_cycles += (mem.clocks_to_ns(b.elapsed_clocks()) * cfg.accel.clock_ghz) as u64;
    }

    RunResult {
        system: cfg.system,
        accel_cycles,
        compute_cycles,
        mem_ns: mem.clocks_to_ns(total_mem_clocks),
        elapsed_ns: accel_cycles as f64 / cfg.accel.clock_ghz,
        iterations,
        edges_processed,
        mem_stats: *mem.stats(),
        cache_stats: path.cache_stats(),
        tile_width: width,
        num_tiles: grid.num_blocks() as u32,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{SimConfig, SystemKind};
    use crate::engine::simulate;
    use piccolo_algo::PageRank;
    use piccolo_graph::generate;

    #[test]
    fn edge_centric_runs_for_baseline_and_piccolo() {
        let g = generate::kronecker(13, 6, 11);
        let base_cfg = SimConfig::for_system(SystemKind::GraphDynsCache, 12).with_max_iterations(2);
        let pic_cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(2);
        let base = simulate_edge_centric(&g, &PageRank::default(), &base_cfg);
        let pic = simulate_edge_centric(&g, &PageRank::default(), &pic_cfg);
        assert!(base.accel_cycles > 0);
        assert!(pic.accel_cycles > 0);
        assert!(
            pic.mem_stats.offchip_bytes < base.mem_stats.offchip_bytes,
            "Piccolo must reduce off-chip traffic in the edge-centric setting too"
        );
    }

    #[test]
    fn edge_centric_processes_same_edges_as_vertex_centric() {
        let g = generate::kronecker(9, 4, 2);
        let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(3);
        let vc = simulate(&g, &PageRank::default(), &cfg);
        let ec = simulate_edge_centric(&g, &PageRank::default(), &cfg);
        assert_eq!(vc.edges_processed, ec.edges_processed);
        assert_eq!(vc.iterations, ec.iterations);
    }
}
