//! Intra-run parallelism controls and the host-side phase profiler.
//!
//! Piccolo has two levels of parallelism:
//!
//! * **unit-level** — the sweep/campaign engine (`piccolo::sweep::run_indexed`) executes
//!   whole simulated runs on `--jobs` worker threads;
//! * **intra-run** — [`pipeline::run`](crate::pipeline::run) splits the interior of one
//!   run (scatter chunks, the apply phase) across [`intra_jobs`] worker threads.
//!
//! The intra-run budget is a process-wide knob rather than a `SimConfig` field on
//! purpose: experiment fingerprints (and therefore campaign plan hashes, journals and
//! shard files) fold the run configuration, and the thread count must never change
//! *what* is computed — results are byte-identical for any value — only how fast.
//!
//! The phase profiler attributes *host* wall-clock nanoseconds per pipeline phase
//! (scatter / apply / frontier rebuild). [`pipeline::run`](crate::pipeline::run)
//! measures each run locally and publishes one [`PhaseProfile`] via
//! [`record_run_profile`], which feeds **two** accumulators:
//!
//! * a process-wide one, read by [`phase_profile`] — the historical aggregate view
//!   the bench harness reports;
//! * a **thread-local** one, drained by [`take_thread_phase_profile`] — per-run
//!   attribution, so a campaign executing units on worker threads can charge
//!   wall-clock to the specific unit that spent it.
//!
//! The process-wide accumulator is cumulative across every run since the last
//! [`reset_phase_profile`]. That is deliberate for the bench harness (one run per
//! process step), but it means a caller timing *one* run among many must use the
//! thread-local seam — reading `phase_profile()` before and after a run observes
//! concurrent runs on other threads too. The observability layer does exactly that;
//! see `docs/observability.md`.
//!
//! These are measurements of the simulator on this machine, not of the simulated
//! accelerator, and they are deliberately kept out of
//! [`RunResult`](crate::RunResult) and every deterministic artifact.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static INTRA_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of worker threads used *inside* each simulated run.
///
/// `0` resolves to the machine's available parallelism at call time; any other value is
/// used as-is (clamped to at least 1). The default is 1 (serial interior), which keeps
/// single-run behaviour identical to the pre-parallel pipeline.
pub fn set_intra_jobs(n: usize) {
    let resolved = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    INTRA_JOBS.store(resolved.max(1), Ordering::Relaxed);
}

/// The current intra-run worker budget (default 1 = serial interior).
pub fn intra_jobs() -> usize {
    INTRA_JOBS.load(Ordering::Relaxed).max(1)
}

static SCATTER_NS: AtomicU64 = AtomicU64::new(0);
static APPLY_NS: AtomicU64 = AtomicU64::new(0);
static FRONTIER_NS: AtomicU64 = AtomicU64::new(0);

thread_local! {
    static THREAD_SCATTER_NS: Cell<u64> = const { Cell::new(0) };
    static THREAD_APPLY_NS: Cell<u64> = const { Cell::new(0) };
    static THREAD_FRONTIER_NS: Cell<u64> = const { Cell::new(0) };
}

/// Host wall-clock nanoseconds spent per pipeline phase.
///
/// These are measurements of the *simulator* on this machine, not of the simulated
/// accelerator; the simulated per-phase cycle breakdown lives in
/// [`PhaseBreakdown`](crate::pipeline::PhaseBreakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseProfile {
    /// Nanoseconds spent in the scatter phase (edge traversal + request generation).
    pub scatter_ns: u64,
    /// Nanoseconds spent in the apply phase (functional apply + apply traffic).
    pub apply_ns: u64,
    /// Nanoseconds spent rebuilding the frontier and per-iteration scratch.
    pub frontier_ns: u64,
}

impl PhaseProfile {
    /// Total profiled nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.scatter_ns + self.apply_ns + self.frontier_ns
    }
}

/// Publishes one completed run's phase timings: adds them to the process-wide
/// aggregate (read by [`phase_profile`]) and to the calling thread's local
/// accumulator (drained by [`take_thread_phase_profile`]).
///
/// Called once per run by [`pipeline::run`](crate::pipeline::run), on whichever
/// thread executed the run.
pub fn record_run_profile(profile: PhaseProfile) {
    SCATTER_NS.fetch_add(profile.scatter_ns, Ordering::Relaxed);
    APPLY_NS.fetch_add(profile.apply_ns, Ordering::Relaxed);
    FRONTIER_NS.fetch_add(profile.frontier_ns, Ordering::Relaxed);
    THREAD_SCATTER_NS.with(|c| c.set(c.get() + profile.scatter_ns));
    THREAD_APPLY_NS.with(|c| c.set(c.get() + profile.apply_ns));
    THREAD_FRONTIER_NS.with(|c| c.set(c.get() + profile.frontier_ns));
}

/// Snapshot of the accumulated host-side phase timings (process-wide, cumulative
/// across runs on every thread since the last [`reset_phase_profile`]).
///
/// For per-run attribution, use [`take_thread_phase_profile`] on the thread that
/// executes the run — this aggregate view cannot separate concurrent runs.
pub fn phase_profile() -> PhaseProfile {
    PhaseProfile {
        scatter_ns: SCATTER_NS.load(Ordering::Relaxed),
        apply_ns: APPLY_NS.load(Ordering::Relaxed),
        frontier_ns: FRONTIER_NS.load(Ordering::Relaxed),
    }
}

/// Resets the process-wide phase profiler to zero (thread-local accumulators are
/// untouched — drain those with [`take_thread_phase_profile`]).
pub fn reset_phase_profile() {
    SCATTER_NS.store(0, Ordering::Relaxed);
    APPLY_NS.store(0, Ordering::Relaxed);
    FRONTIER_NS.store(0, Ordering::Relaxed);
}

/// Takes (returns and zeroes) the calling thread's phase-timing accumulator.
///
/// The per-run attribution seam: a scheduler that executes a unit on this thread
/// calls this immediately before the unit (discarding leftovers from earlier
/// work) and immediately after (capturing exactly that unit's phase timings),
/// immune to concurrent runs on other threads.
pub fn take_thread_phase_profile() -> PhaseProfile {
    PhaseProfile {
        scatter_ns: THREAD_SCATTER_NS.with(|c| c.replace(0)),
        apply_ns: THREAD_APPLY_NS.with(|c| c.replace(0)),
        frontier_ns: THREAD_FRONTIER_NS.with(|c| c.replace(0)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_jobs_resolves_zero_to_at_least_one() {
        // Other tests may race on the global; only assert invariants that hold for any
        // interleaving of set_intra_jobs calls.
        set_intra_jobs(0);
        assert!(intra_jobs() >= 1);
        set_intra_jobs(3);
        assert!(intra_jobs() >= 1);
        set_intra_jobs(1);
    }

    #[test]
    fn recording_feeds_both_the_global_and_the_thread_accumulator() {
        let before = phase_profile();
        let _ = take_thread_phase_profile();
        record_run_profile(PhaseProfile {
            scatter_ns: 5,
            apply_ns: 7,
            frontier_ns: 9,
        });
        let after = phase_profile();
        // Globals race with other tests, so only assert our own contribution.
        assert!(after.scatter_ns >= before.scatter_ns + 5);
        assert!(after.apply_ns >= before.apply_ns + 7);
        assert!(after.frontier_ns >= before.frontier_ns + 9);
        let local = take_thread_phase_profile();
        assert_eq!(
            local,
            PhaseProfile {
                scatter_ns: 5,
                apply_ns: 7,
                frontier_ns: 9
            }
        );
        assert_eq!(local.total_ns(), 21);
    }

    #[test]
    fn thread_profiles_attribute_per_run_even_across_threads() {
        // The cross-run accumulation footgun the thread-local seam fixes: two
        // "runs" on different threads each see exactly their own timings.
        let t1 = std::thread::spawn(|| {
            let _ = take_thread_phase_profile();
            record_run_profile(PhaseProfile {
                scatter_ns: 100,
                ..PhaseProfile::default()
            });
            take_thread_phase_profile()
        });
        let t2 = std::thread::spawn(|| {
            let _ = take_thread_phase_profile();
            record_run_profile(PhaseProfile {
                apply_ns: 200,
                ..PhaseProfile::default()
            });
            take_thread_phase_profile()
        });
        let p1 = t1.join().unwrap();
        let p2 = t2.join().unwrap();
        assert_eq!(p1.scatter_ns, 100);
        assert_eq!(p1.apply_ns, 0);
        assert_eq!(p2.apply_ns, 200);
        assert_eq!(p2.scatter_ns, 0);
        // A second take on a fresh thread is empty: takes drain.
        let drained = std::thread::spawn(take_thread_phase_profile)
            .join()
            .unwrap();
        assert_eq!(drained, PhaseProfile::default());
    }
}
