//! Intra-run parallelism controls and the host-side phase profiler.
//!
//! Piccolo has two levels of parallelism:
//!
//! * **unit-level** — the sweep/campaign engine (`piccolo::sweep::run_indexed`) executes
//!   whole simulated runs on `--jobs` worker threads;
//! * **intra-run** — [`pipeline::run`](crate::pipeline::run) splits the interior of one
//!   run (scatter chunks, the apply phase) across [`intra_jobs`] worker threads.
//!
//! The intra-run budget is a process-wide knob rather than a `SimConfig` field on
//! purpose: experiment fingerprints (and therefore campaign plan hashes, journals and
//! shard files) fold the run configuration, and the thread count must never change
//! *what* is computed — results are byte-identical for any value — only how fast.
//!
//! The phase profiler accumulates *host* wall-clock nanoseconds per pipeline phase
//! (scatter / apply / frontier rebuild) across all runs since the last reset. It exists
//! so hot-loop work is profile-guided; the numbers are wall-clock facts about this
//! machine and are deliberately kept out of [`RunResult`](crate::RunResult) and every
//! deterministic artifact.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

static INTRA_JOBS: AtomicUsize = AtomicUsize::new(1);

/// Sets the number of worker threads used *inside* each simulated run.
///
/// `0` resolves to the machine's available parallelism at call time; any other value is
/// used as-is (clamped to at least 1). The default is 1 (serial interior), which keeps
/// single-run behaviour identical to the pre-parallel pipeline.
pub fn set_intra_jobs(n: usize) {
    let resolved = if n == 0 {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    } else {
        n
    };
    INTRA_JOBS.store(resolved.max(1), Ordering::Relaxed);
}

/// The current intra-run worker budget (default 1 = serial interior).
pub fn intra_jobs() -> usize {
    INTRA_JOBS.load(Ordering::Relaxed).max(1)
}

static SCATTER_NS: AtomicU64 = AtomicU64::new(0);
static APPLY_NS: AtomicU64 = AtomicU64::new(0);
static FRONTIER_NS: AtomicU64 = AtomicU64::new(0);

/// Host wall-clock nanoseconds spent per pipeline phase since the last
/// [`reset_phase_profile`], accumulated across every run in the process.
///
/// These are measurements of the *simulator* on this machine, not of the simulated
/// accelerator; the simulated per-phase cycle breakdown lives in
/// [`PhaseBreakdown`](crate::pipeline::PhaseBreakdown).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseProfile {
    /// Nanoseconds spent in the scatter phase (edge traversal + request generation).
    pub scatter_ns: u64,
    /// Nanoseconds spent in the apply phase (functional apply + apply traffic).
    pub apply_ns: u64,
    /// Nanoseconds spent rebuilding the frontier and per-iteration scratch.
    pub frontier_ns: u64,
}

impl PhaseProfile {
    /// Total profiled nanoseconds.
    pub fn total_ns(&self) -> u64 {
        self.scatter_ns + self.apply_ns + self.frontier_ns
    }
}

pub(crate) fn add_scatter_ns(ns: u64) {
    SCATTER_NS.fetch_add(ns, Ordering::Relaxed);
}

pub(crate) fn add_apply_ns(ns: u64) {
    APPLY_NS.fetch_add(ns, Ordering::Relaxed);
}

pub(crate) fn add_frontier_ns(ns: u64) {
    FRONTIER_NS.fetch_add(ns, Ordering::Relaxed);
}

/// Snapshot of the accumulated host-side phase timings (process-wide).
pub fn phase_profile() -> PhaseProfile {
    PhaseProfile {
        scatter_ns: SCATTER_NS.load(Ordering::Relaxed),
        apply_ns: APPLY_NS.load(Ordering::Relaxed),
        frontier_ns: FRONTIER_NS.load(Ordering::Relaxed),
    }
}

/// Resets the phase profiler to zero.
pub fn reset_phase_profile() {
    SCATTER_NS.store(0, Ordering::Relaxed);
    APPLY_NS.store(0, Ordering::Relaxed);
    FRONTIER_NS.store(0, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intra_jobs_resolves_zero_to_at_least_one() {
        // Other tests may race on the global; only assert invariants that hold for any
        // interleaving of set_intra_jobs calls.
        set_intra_jobs(0);
        assert!(intra_jobs() >= 1);
        set_intra_jobs(3);
        assert!(intra_jobs() >= 1);
        set_intra_jobs(1);
    }

    #[test]
    fn profiler_accumulates_and_resets() {
        add_scatter_ns(5);
        add_apply_ns(7);
        add_frontier_ns(9);
        let p = phase_profile();
        assert!(p.scatter_ns >= 5 && p.apply_ns >= 7 && p.frontier_ns >= 9);
        assert!(p.total_ns() >= 21);
    }
}
