//! The shared simulation pipeline behind both accelerator models.
//!
//! [`engine::simulate`](crate::engine::simulate) (vertex-centric) and
//! [`edge_centric::simulate_edge_centric`](crate::edge_centric::simulate_edge_centric)
//! perform the same computation per iteration — initialise `Vtemp`, scatter contributions
//! along edges, apply, rebuild the frontier — and push the same kinds of traffic through
//! the same on-chip [`MemoryPath`] into the same DRAM model. The only genuine difference
//! between them is *traversal order*: which edges a chunk of work contains and which
//! sequential streams (topology, frontier, source properties) accompany it.
//!
//! This module owns everything that is traversal-independent:
//!
//! * the **iteration driver** [`run`] — functional state, convergence, the apply phase,
//!   compute/memory overlap timing, the final dirty flush and [`RunResult`] assembly;
//! * **frontier management** — the active set handed to each iteration and the
//!   dense/sparse frontier-read policy ([`ScatterContext::frontier_reads`]);
//! * **property-access plumbing** — turning per-edge destination updates and sequential
//!   streams into [`MemoryPath`]/[`MemRequest`] traffic
//!   ([`ScatterContext::process_edge`], [`ScatterContext::stream`]).
//!
//! A traversal order implements [`Traversal`] and is handed a [`ScatterContext`] per
//! iteration; it decides chunk boundaries and request order, and nothing else. Adding a
//! new execution strategy (sharded, asynchronous, multi-backend) means adding a new
//! `Traversal` implementation — not a new engine.
//!
//! Every piece of state [`run`] touches — the memory path (with its boxed cache model),
//! the DRAM system, the functional property arrays — is constructed inside the call and
//! owned by it, so whole runs are freely shippable to worker threads: the parallel sweep
//! engine (`piccolo::sweep`) executes one `run` per worker. The `send_audit` test below
//! keeps this property from regressing.

use crate::config::{SimConfig, SystemKind, TilingPolicy};
use crate::layout::{GraphLayout, PROP_BYTES, ROW_OFFSET_BYTES};
use crate::path::MemoryPath;
use piccolo_algo::vcm::VertexProgram;
use piccolo_cache::CacheStats;
use piccolo_dram::{AddressMapper, MemRequest, MemStats, MemorySystem, Region};
use piccolo_graph::{ActiveSet, BitSet, Csr, Tiling, VertexId, VertexProps, Weight};

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The simulated system.
    pub system: SystemKind,
    /// Total accelerator cycles (at the accelerator clock).
    pub accel_cycles: u64,
    /// Cycles spent in the PE array (compute component).
    pub compute_cycles: u64,
    /// DRAM busy time in nanoseconds.
    pub mem_ns: f64,
    /// Wall-clock of the run in nanoseconds (accelerator cycles / clock).
    pub elapsed_ns: f64,
    /// Iterations executed.
    pub iterations: u32,
    /// Edges processed across all iterations.
    pub edges_processed: u64,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
    /// Vertex cache/scratchpad statistics.
    pub cache_stats: CacheStats,
    /// Tile width used.
    pub tile_width: u32,
    /// Number of tiles.
    pub num_tiles: u32,
}

impl RunResult {
    /// Average off-chip bandwidth in GB/s over the run.
    pub fn offchip_bandwidth_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            0.0
        } else {
            self.mem_stats.offchip_bytes as f64 / self.elapsed_ns
        }
    }

    /// Average DRAM-internal bandwidth in GB/s over the run (data moved by FIM/NMP/PIM
    /// operations that never crosses the channel).
    pub fn internal_bandwidth_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            0.0
        } else {
            self.mem_stats.internal_bytes as f64 / self.elapsed_ns
        }
    }
}

/// The tile-scaling factors [`TilingPolicy::Best`] searches on fine-grained systems.
///
/// Fig. 17's sweep shows two regimes for Piccolo/NMP: factor 1 (tiles that just fit)
/// wins when random destination traffic dominates (dense frontiers, high-degree
/// graphs), factor 2 when the per-tile frontier streams dominate (sparse frontiers,
/// low-degree graphs). Conventional caches always prefer factor 1 — over-sized tiles
/// thrash 64 B lines — so only the fine-grained systems search.
pub const BEST_TILING_FACTORS: [u32; 2] = [1, 2];

/// Chooses the tiling for a run.
///
/// `TilingPolicy::Best` resolves to the *default* factor of the system family here
/// (factor 2 for fine-grained systems, 1 otherwise). This arm only matters for callers
/// that construct a [`Traversal`] directly from a `Best` config: both engine entry
/// points — [`engine::simulate`](crate::engine::simulate) and
/// [`edge_centric::simulate_edge_centric`](crate::edge_centric::simulate_edge_centric)
/// — implement Best's documented "exhaustive search" semantics through
/// [`run_with_best_search`], which replaces `Best` with each [`BEST_TILING_FACTORS`]
/// candidate before any tiling is resolved.
pub fn resolve_tiling(cfg: &SimConfig, num_vertices: u32) -> Tiling {
    match cfg.tiling {
        TilingPolicy::None => Tiling::single_tile(num_vertices),
        TilingPolicy::Perfect => {
            Tiling::perfect(num_vertices, cfg.accel.onchip_bytes, PROP_BYTES as u32)
        }
        TilingPolicy::Scaled(f) => {
            Tiling::scaled(num_vertices, cfg.accel.onchip_bytes, PROP_BYTES as u32, f)
        }
        TilingPolicy::Best => {
            let factor = match cfg.system {
                SystemKind::Nmp | SystemKind::Piccolo => 2,
                _ => 1,
            };
            Tiling::scaled(
                num_vertices,
                cfg.accel.onchip_bytes,
                PROP_BYTES as u32,
                factor,
            )
        }
    }
}

/// Runs `program` under `cfg`, giving [`TilingPolicy::Best`] its documented exhaustive
/// search on fine-grained systems (Piccolo/NMP): the run is simulated once per
/// [`BEST_TILING_FACTORS`] candidate — `make` rebuilds the traversal for each resolved
/// candidate config — and the fastest result wins (the smaller factor on a tie). Which
/// factor wins depends on the workload: dense frontiers (PR/CC) and high-degree graphs
/// favor tiles that just fit, sparse frontiers and low-degree graphs favor 2x tiles —
/// so a fixed factor is measurably mis-calibrated for part of the figure suite, in the
/// edge-centric setting just as in the vertex-centric one (grid blocks are sized by the
/// same capacity rule). Conventional systems always prefer factor 1 — over-sized tiles
/// thrash 64 B lines — and skip the search.
///
/// Both engines funnel through here, so "Best" means the same thing on every traversal
/// order.
pub fn run_with_best_search<P, T, M>(
    graph: &Csr,
    program: &P,
    cfg: &SimConfig,
    make: M,
) -> RunResult
where
    P: VertexProgram,
    T: Traversal<P>,
    M: Fn(&Csr, &SimConfig) -> T,
{
    if cfg.tiling == TilingPolicy::Best
        && matches!(cfg.system, SystemKind::Nmp | SystemKind::Piccolo)
    {
        return BEST_TILING_FACTORS
            .into_iter()
            .map(|f| {
                let candidate = cfg.with_tiling(TilingPolicy::Scaled(f));
                run(graph, program, &candidate, &make(graph, &candidate))
            })
            .reduce(|best, cand| {
                // Strict `<` keeps the earlier (smaller) factor on a tie.
                if cand.accel_cycles < best.accel_cycles {
                    cand
                } else {
                    best
                }
            })
            .expect("BEST_TILING_FACTORS is non-empty");
    }
    run(graph, program, cfg, &make(graph, cfg))
}

/// A traversal order: how one iteration's scatter phase walks the graph.
///
/// Implementations chunk the edge set (destination-interval tiles for the vertex-centric
/// engine, 2-D grid blocks for the edge-centric one), emit each chunk's sequential
/// streams, and feed every traversed edge to [`ScatterContext::process_edge`]. Everything
/// else — functional semantics, caching, DRAM timing, apply, convergence — is shared and
/// lives in [`run`].
pub trait Traversal<P: VertexProgram> {
    /// `(tile_width, num_tiles)` reported in the [`RunResult`].
    fn shape(&self) -> (u32, u32);

    /// Executes the scatter phase of one iteration through `ctx`.
    ///
    /// For each chunk the implementation must call [`ScatterContext::begin_chunk`],
    /// generate the chunk's streams and edge work, then [`ScatterContext::end_chunk`].
    fn scatter(&self, ctx: &mut ScatterContext<'_, P>);
}

/// Per-iteration view of the pipeline handed to a [`Traversal`].
///
/// Owns the request buffer of the chunk in flight plus mutable access to the functional
/// state (`Vtemp`, touched set) and the memory path; exposes read-only access to the
/// frontier and `Vprop`.
pub struct ScatterContext<'a, P: VertexProgram> {
    program: &'a P,
    cfg: &'a SimConfig,
    layout: &'a GraphLayout,
    mapper: &'a AddressMapper,
    num_vertices: u32,
    path: &'a mut MemoryPath,
    mem: &'a mut MemorySystem,
    props: &'a VertexProps<P::Value>,
    active: &'a ActiveSet,
    temp: &'a mut VertexProps<P::Value>,
    touched: &'a mut BitSet,
    reqs: Vec<MemRequest>,
    iter_mem_clocks: u64,
    iter_edges: u64,
}

impl<P: VertexProgram> std::fmt::Debug for ScatterContext<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScatterContext")
            .field("system", &self.cfg.system)
            .field("pending_requests", &self.reqs.len())
            .field("iter_edges", &self.iter_edges)
            .finish()
    }
}

impl<'a, P: VertexProgram> ScatterContext<'a, P> {
    /// The simulation configuration of this run.
    pub fn cfg(&self) -> &SimConfig {
        self.cfg
    }

    /// The DRAM layout of the graph arrays.
    pub fn layout(&self) -> &GraphLayout {
        self.layout
    }

    /// The active-vertex frontier of this iteration.
    pub fn active(&self) -> &ActiveSet {
        self.active
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Current `Vprop[v]`.
    pub fn prop(&self, v: VertexId) -> P::Value {
        self.props[v]
    }

    /// Opens a chunk whose destination slice spans `tile_bytes` of `Vtemp` (drives
    /// Piccolo-cache way partitioning).
    pub fn begin_chunk(&mut self, tile_bytes: u64) {
        self.path.begin_tile(tile_bytes);
    }

    /// Closes the chunk: drains the collection MSHR and services the chunk's request
    /// batch through the DRAM model.
    pub fn end_chunk(&mut self) {
        self.path.end_tile(&mut self.reqs);
        if !self.reqs.is_empty() {
            let batch = self.mem.service_batch(std::mem::take(&mut self.reqs));
            self.iter_mem_clocks += batch.elapsed_clocks();
        }
    }

    /// Processes one traversed edge `src --(weight)--> dst`: applies
    /// `Reduce(Vtemp[dst], Process(weight, Vprop[src]))` functionally, marks the
    /// destination touched, and pushes the 8 B random read-modify-write of `Vtemp[dst]`
    /// through the on-chip memory path.
    pub fn process_edge(&mut self, src: VertexId, dst: VertexId, weight: Weight) {
        let res = self.program.process(weight, self.props[src]);
        self.temp[dst] = self.program.reduce(self.temp[dst], res);
        self.touched.insert(dst as usize);
        self.iter_edges += 1;
        self.path.random_access(
            self.layout.vtemp_addr(dst),
            true,
            self.mapper,
            &mut self.reqs,
        );
    }

    /// Emits `bytes` of sequential stream traffic starting at `base + offset` as 64 B
    /// bursts (reads, or writes when `write` is set), every byte useful.
    pub fn stream(&mut self, base: u64, offset: u64, bytes: u64, write: bool, region: Region) {
        stream_requests(&mut self.reqs, base, offset, bytes, write, region);
    }

    /// Emits the row-offset and `Vprop` reads of this iteration's frontier for one chunk.
    ///
    /// Dense frontiers (PageRank, early CC iterations — or always, for Graphicionado,
    /// which has no active-vertex compaction in its prefetcher) stream sequentially.
    /// Sparse frontiers are isolated 4/8 B reads scattered over large arrays (the Fig. 3
    /// situation for BFS): a conventional memory system still fetches a 64 B burst per
    /// touched line, whereas Piccolo/NMP gather up to eight useful words per DRAM row
    /// through the same in-memory scatter/gather machinery used for the destination
    /// properties.
    ///
    /// `chunk_idx` decorrelates the per-chunk re-reads in the address map;
    /// `sources_with_edges` is the number of frontier vertices with edges in this chunk.
    pub fn frontier_reads(&mut self, chunk_idx: usize, sources_with_edges: u64) {
        let n = self.num_vertices as u64;
        let dense =
            self.active.len() as u64 * 16 >= n || self.cfg.system == SystemKind::Graphicionado;
        if dense {
            let row_vertices = if self.cfg.system == SystemKind::Graphicionado {
                n
            } else {
                self.active.len() as u64
            };
            self.stream(
                self.layout.row_offsets_base,
                (chunk_idx as u64 * n * ROW_OFFSET_BYTES) % (1 << 28),
                row_vertices * ROW_OFFSET_BYTES,
                false,
                Region::TopologyRow,
            );
            self.stream(
                self.layout.vprop_base,
                0,
                sources_with_edges * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        } else {
            let fine = matches!(self.cfg.system, SystemKind::Piccolo | SystemKind::Nmp);
            let nmp = self.cfg.system == SystemKind::Nmp;
            let layout = *self.layout;
            sparse_frontier_requests(
                &mut self.reqs,
                self.active.iter_sorted().flat_map(|u| {
                    [
                        (layout.row_offset_addr(u), ROW_OFFSET_BYTES as u32),
                        (layout.vprop_addr(u), PROP_BYTES as u32),
                    ]
                }),
                fine,
                nmp,
                self.mapper,
                self.cfg.dram.fim.items_per_op,
            );
        }
    }
}

/// Emits `bytes` of sequential stream traffic starting at `base + offset` as 64 B reads
/// (or writes), marking every byte useful.
pub(crate) fn stream_requests(
    out: &mut Vec<MemRequest>,
    base: u64,
    offset: u64,
    bytes: u64,
    write: bool,
    region: Region,
) {
    if bytes == 0 {
        return;
    }
    let start = (base + offset) & !63;
    let bursts = bytes.div_ceil(64);
    for i in 0..bursts {
        let addr = start + i * 64;
        out.push(if write {
            MemRequest::Write {
                addr,
                useful_bytes: 64,
                region,
            }
        } else {
            MemRequest::Read {
                addr,
                useful_bytes: 64,
                region,
            }
        });
    }
}

/// Emits the per-tile reads of isolated (sparse-frontier) 4/8 B accesses: row-grouped
/// in-memory gathers on fine-grained systems, one 64 B line read per touched line
/// otherwise.
pub(crate) fn sparse_frontier_requests(
    out: &mut Vec<MemRequest>,
    addrs: impl Iterator<Item = (u64, u32)>,
    fine_grained: bool,
    nmp: bool,
    mapper: &AddressMapper,
    items_per_op: u32,
) {
    if fine_grained {
        let mut by_row: std::collections::HashMap<piccolo_dram::RowId, Vec<u16>> =
            std::collections::HashMap::new();
        let mut order = Vec::new();
        for (addr, _useful) in addrs {
            let loc = mapper.decompose(addr);
            let row = mapper.row_id_of(&loc);
            let entry = by_row.entry(row).or_insert_with(|| {
                order.push(row);
                Vec::new()
            });
            let off = loc.word_offset();
            if !entry.contains(&off) {
                entry.push(off);
            }
        }
        for row in order {
            for chunk in by_row[&row].chunks(items_per_op.max(1) as usize) {
                out.push(if nmp {
                    MemRequest::GatherNmp {
                        row,
                        offsets: chunk.to_vec(),
                        region: Region::TopologyRow,
                    }
                } else {
                    MemRequest::GatherFim {
                        row,
                        offsets: chunk.to_vec(),
                        region: Region::TopologyRow,
                    }
                });
            }
        }
    } else {
        let mut last_line = u64::MAX;
        for (addr, useful) in addrs {
            let line = addr & !63;
            if line == last_line {
                continue;
            }
            last_line = line;
            out.push(MemRequest::Read {
                addr: line,
                useful_bytes: useful,
                region: Region::TopologyRow,
            });
        }
    }
}

/// Runs `program` on `graph` under `cfg` with the given traversal order and returns
/// timing and traffic statistics.
///
/// ## Timing model
///
/// Per iteration the driver accumulates the DRAM service time of all generated requests
/// (per-chunk batches) and the PE-array compute time; with prefetching enabled the two
/// overlap (`max`), without it they serialize (`+`), which reproduces the ~20 % penalty
/// of Fig. 20b. The graph-processing accelerators the paper builds on are throughput
/// oriented: per-request latency is hidden by deep prefetch/miss queues, so makespan
/// rather than per-access latency determines performance.
///
/// ## Apply-phase traffic
///
/// Scratchpad accelerators apply over every vertex of every tile (Algorithm 1 line 6):
/// the whole `Vprop` array is re-read each iteration. Cache-based systems read the
/// `Vtemp`/`Vprop` pair of touched destinations only. Updated entries are written back
/// in both cases. This policy is shared by every traversal order.
pub fn run<P: VertexProgram, T: Traversal<P>>(
    graph: &Csr,
    program: &P,
    cfg: &SimConfig,
    traversal: &T,
) -> RunResult {
    let n = graph.num_vertices();
    let layout = GraphLayout::new(graph);
    let mut path = MemoryPath::new(cfg.system, cfg.cache, &cfg.accel, &cfg.dram);
    let mut mem = MemorySystem::new(cfg.dram);
    let mapper = *mem.mapper();

    // Functional state (mirrors piccolo_algo::run_vcm).
    let mut props = VertexProps::new(n, program.initial_value(0, graph));
    for v in 0..n {
        props[v] = program.initial_value(v, graph);
    }
    let mut active = program.initial_active(graph);

    let mut total_mem_clocks = 0u64;
    let mut compute_cycles = 0u64;
    let mut accel_cycles = 0u64;
    let mut edges_processed = 0u64;
    let mut iterations = 0u32;
    let all_active_algorithm = program.algorithm().is_all_active();

    for _iter in 0..cfg.max_iterations {
        if active.is_empty() {
            break;
        }
        iterations += 1;

        let mut temp = VertexProps::new(n, program.temp_identity(0, graph));
        for v in 0..n {
            temp[v] = program.temp_identity(v, graph);
        }
        let mut touched = BitSet::new(n as usize);

        // Scatter phase (Algorithm 1 lines 1-5), in the traversal's order.
        let mut ctx = ScatterContext {
            program,
            cfg,
            layout: &layout,
            mapper: &mapper,
            num_vertices: n,
            path: &mut path,
            mem: &mut mem,
            props: &props,
            active: &active,
            temp: &mut temp,
            touched: &mut touched,
            reqs: Vec::new(),
            iter_mem_clocks: 0,
            iter_edges: 0,
        };
        traversal.scatter(&mut ctx);
        debug_assert!(ctx.reqs.is_empty(), "traversal left an unclosed chunk");
        if !ctx.reqs.is_empty() {
            // Fail closed in release builds: a traversal that forgot its final
            // end_chunk() must not silently drop traffic from the timing model.
            ctx.end_chunk();
        }
        let mut iter_mem_clocks = ctx.iter_mem_clocks;
        let iter_edges = ctx.iter_edges;

        // Apply phase (Algorithm 1 lines 6-10), functionally over every vertex, with
        // memory traffic charged for touched destinations only.
        let mut next_active = ActiveSet::new(n);
        let mut updated = 0u64;
        for v in 0..n {
            let new = program.apply(props[v], temp[v], program.vconst(v, graph));
            if program.changed(props[v], new) {
                props[v] = new;
                next_active.activate(v);
                updated += 1;
            }
        }
        let touched_count = touched.count() as u64;
        let mut apply_reqs = Vec::new();
        if path.is_scratchpad() {
            stream_requests(
                &mut apply_reqs,
                layout.vprop_base,
                0,
                n as u64 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        } else {
            stream_requests(
                &mut apply_reqs,
                layout.vtemp_base,
                0,
                touched_count * 2 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        }
        stream_requests(
            &mut apply_reqs,
            layout.vprop_base,
            0,
            updated * PROP_BYTES,
            true,
            Region::PropertySequential,
        );
        if !apply_reqs.is_empty() {
            iter_mem_clocks += mem.service_batch(apply_reqs).elapsed_clocks();
        }

        // Timing: compute overlaps memory when the prefetcher is enabled.
        let iter_compute = cfg
            .accel
            .compute_cycles(iter_edges, touched_count + updated);
        let iter_mem_ns = mem.clocks_to_ns(iter_mem_clocks);
        let iter_mem_accel_cycles = (iter_mem_ns * cfg.accel.clock_ghz).ceil() as u64;
        accel_cycles += if cfg.accel.prefetch {
            iter_compute.max(iter_mem_accel_cycles)
        } else {
            iter_compute + iter_mem_accel_cycles
        };
        compute_cycles += iter_compute;
        total_mem_clocks += iter_mem_clocks;
        edges_processed += iter_edges;

        active = if all_active_algorithm && updated > 0 {
            ActiveSet::all(n)
        } else if all_active_algorithm {
            ActiveSet::new(n)
        } else {
            next_active
        };
    }

    // Final flush: dirty vertex data must reach memory.
    let mut final_reqs = Vec::new();
    path.finish(&mapper, &mut final_reqs);
    if !final_reqs.is_empty() {
        let batch = mem.service_batch(final_reqs);
        total_mem_clocks += batch.elapsed_clocks();
        accel_cycles += (mem.clocks_to_ns(batch.elapsed_clocks()) * cfg.accel.clock_ghz) as u64;
    }

    let (tile_width, num_tiles) = traversal.shape();
    let mem_ns = mem.clocks_to_ns(total_mem_clocks);
    RunResult {
        system: cfg.system,
        accel_cycles,
        compute_cycles,
        mem_ns,
        elapsed_ns: accel_cycles as f64 / cfg.accel.clock_ghz,
        iterations,
        edges_processed,
        mem_stats: *mem.stats(),
        cache_stats: path.cache_stats(),
        tile_width,
        num_tiles,
    }
}

#[cfg(test)]
mod send_audit {
    //! Compile-time audit that the whole simulation pipeline is per-run owned: a worker
    //! thread must be able to own a run's memory path (with its boxed cache), DRAM
    //! system and result. Fails to compile if any layer grows shared mutability.
    use super::*;
    use crate::config::SimConfig;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn simulation_state_is_send() {
        assert_send::<MemoryPath>();
        assert_send::<MemorySystem>();
        assert_send::<RunResult>();
        assert_send::<SimConfig>();
        // Shared read-only inputs of a sweep: one graph serves many worker threads.
        assert_sync::<Csr>();
        assert_sync::<SimConfig>();
    }
}
