//! The shared simulation pipeline behind both accelerator models.
//!
//! [`engine::simulate`](crate::engine::simulate) (vertex-centric) and
//! [`edge_centric::simulate_edge_centric`](crate::edge_centric::simulate_edge_centric)
//! perform the same computation per iteration — initialise `Vtemp`, scatter contributions
//! along edges, apply, rebuild the frontier — and push the same kinds of traffic through
//! the same on-chip [`MemoryPath`] into the same DRAM model. The only genuine difference
//! between them is *traversal order*: which edges a chunk of work contains and which
//! sequential streams (topology, frontier, source properties) accompany it.
//!
//! This module owns everything that is traversal-independent:
//!
//! * the **iteration driver** [`run`] — functional state, convergence, the apply phase,
//!   compute/memory overlap timing, the final dirty flush and [`RunResult`] assembly;
//! * **frontier management** — the active set handed to each iteration and the
//!   dense/sparse frontier-read policy ([`ScatterContext::frontier_reads`]);
//! * **property-access plumbing** — turning per-edge destination updates and sequential
//!   streams into [`MemoryPath`]/[`MemRequest`] traffic
//!   ([`ScatterContext::process_edge`], [`ScatterContext::stream`]);
//! * **intra-run parallelism** — when [`crate::parallel::intra_jobs`] is above 1, the
//!   scatter chunks and the apply range are split across worker threads (see below).
//!
//! A traversal order implements [`Traversal`]: it numbers its chunks (destination-interval
//! tiles for the vertex-centric engine, 2-D grid blocks for the edge-centric one),
//! executes any single chunk on demand through a [`ScatterContext`], and groups chunks by
//! destination range ([`ScatterGroup`]) so the driver can partition `Vtemp` between
//! workers. Adding a new execution strategy (sharded, asynchronous, multi-backend) means
//! adding a new `Traversal` implementation — not a new engine.
//!
//! ## Deterministic intra-run parallelism
//!
//! The only state that makes chunk order matter is the memory path (vertex cache, MSHR,
//! PIM operand buffer) and the DRAM model behind it. Workers therefore never touch
//! either: each worker executes its chunks *functionally* (updating its disjoint `Vtemp`
//! segment) while **recording** the chunk's memory operations into a compact trace, and
//! the driver thread **replays** every trace through the single memory path in ascending
//! global chunk order — exactly the call sequence the serial interior produces. Per-chunk
//! destination updates keep their serial order because every chunk runs on one worker,
//! and per-destination reduction order across chunks is preserved by grouping (a
//! destination belongs to exactly one [`ScatterGroup`], whose chunks execute in ascending
//! order on one worker). The result: `results.json` is byte-identical for any intra-run
//! thread count.
//!
//! Every piece of state [`run`] touches — the memory path (with its boxed cache model),
//! the DRAM system, the functional property arrays — is constructed inside the call and
//! owned by it, so whole runs are freely shippable to worker threads: the parallel sweep
//! engine (`piccolo::sweep`) executes one `run` per worker. The `send_audit` test below
//! keeps this property from regressing.

use crate::config::{SimConfig, SystemKind, TilingPolicy};
use crate::layout::{GraphLayout, PROP_BYTES, ROW_OFFSET_BYTES};
use crate::parallel;
use crate::path::MemoryPath;
use piccolo_algo::vcm::VertexProgram;
use piccolo_cache::CacheStats;
use piccolo_dram::{AddressMapper, MemRequest, MemStats, MemorySystem, Region};
use piccolo_graph::{ActiveSet, BitSet, Csr, Tiling, VertexId, VertexProps, Weight};
use std::time::Instant;

/// Simulated DRAM-clock cycles split by pipeline phase.
///
/// The three components sum to the run's total memory busy time; they are deterministic
/// simulation outputs (not host timings) and ride through the results codec so hot-loop
/// work can be profile-guided from any committed `BENCH.json`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PhaseBreakdown {
    /// DRAM clocks servicing scatter-phase traffic (per-chunk batches).
    pub scatter_mem_clocks: u64,
    /// DRAM clocks servicing apply-phase traffic.
    pub apply_mem_clocks: u64,
    /// DRAM clocks servicing the final dirty flush.
    pub flush_mem_clocks: u64,
}

impl PhaseBreakdown {
    /// Total DRAM clocks across all phases (equals the run's memory busy time).
    pub fn total(&self) -> u64 {
        self.scatter_mem_clocks + self.apply_mem_clocks + self.flush_mem_clocks
    }
}

/// Result of one simulated run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// The simulated system.
    pub system: SystemKind,
    /// Total accelerator cycles (at the accelerator clock).
    pub accel_cycles: u64,
    /// Cycles spent in the PE array (compute component).
    pub compute_cycles: u64,
    /// DRAM busy time in nanoseconds.
    pub mem_ns: f64,
    /// Wall-clock of the run in nanoseconds (accelerator cycles / clock).
    pub elapsed_ns: f64,
    /// Iterations executed.
    pub iterations: u32,
    /// Edges processed across all iterations.
    pub edges_processed: u64,
    /// Memory-system statistics.
    pub mem_stats: MemStats,
    /// Vertex cache/scratchpad statistics.
    pub cache_stats: CacheStats,
    /// Tile width used.
    pub tile_width: u32,
    /// Number of tiles.
    pub num_tiles: u32,
    /// Per-phase breakdown of the simulated DRAM busy time.
    pub phases: PhaseBreakdown,
}

impl RunResult {
    /// Average off-chip bandwidth in GB/s over the run.
    pub fn offchip_bandwidth_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            0.0
        } else {
            self.mem_stats.offchip_bytes as f64 / self.elapsed_ns
        }
    }

    /// Average DRAM-internal bandwidth in GB/s over the run (data moved by FIM/NMP/PIM
    /// operations that never crosses the channel).
    pub fn internal_bandwidth_gbps(&self) -> f64 {
        if self.elapsed_ns <= 0.0 {
            0.0
        } else {
            self.mem_stats.internal_bytes as f64 / self.elapsed_ns
        }
    }
}

/// The tile-scaling factors [`TilingPolicy::Best`] searches on fine-grained systems.
///
/// Fig. 17's sweep shows two regimes for Piccolo/NMP: factor 1 (tiles that just fit)
/// wins when random destination traffic dominates (dense frontiers, high-degree
/// graphs), factor 2 when the per-tile frontier streams dominate (sparse frontiers,
/// low-degree graphs). Conventional caches always prefer factor 1 — over-sized tiles
/// thrash 64 B lines — so only the fine-grained systems search.
pub const BEST_TILING_FACTORS: [u32; 2] = [1, 2];

/// Chooses the tiling for a run.
///
/// `TilingPolicy::Best` resolves to the *default* factor of the system family here
/// (factor 2 for fine-grained systems, 1 otherwise). This arm only matters for callers
/// that construct a [`Traversal`] directly from a `Best` config: both engine entry
/// points — [`engine::simulate`](crate::engine::simulate) and
/// [`edge_centric::simulate_edge_centric`](crate::edge_centric::simulate_edge_centric)
/// — implement Best's documented "exhaustive search" semantics through
/// [`run_with_best_search`], which replaces `Best` with each [`BEST_TILING_FACTORS`]
/// candidate before any tiling is resolved.
pub fn resolve_tiling(cfg: &SimConfig, num_vertices: u32) -> Tiling {
    match cfg.tiling {
        TilingPolicy::None => Tiling::single_tile(num_vertices),
        TilingPolicy::Perfect => {
            Tiling::perfect(num_vertices, cfg.accel.onchip_bytes, PROP_BYTES as u32)
        }
        TilingPolicy::Scaled(f) => {
            Tiling::scaled(num_vertices, cfg.accel.onchip_bytes, PROP_BYTES as u32, f)
        }
        TilingPolicy::Best => {
            let factor = match cfg.system {
                SystemKind::Nmp | SystemKind::Piccolo => 2,
                _ => 1,
            };
            Tiling::scaled(
                num_vertices,
                cfg.accel.onchip_bytes,
                PROP_BYTES as u32,
                factor,
            )
        }
    }
}

/// Runs `program` under `cfg`, giving [`TilingPolicy::Best`] its documented exhaustive
/// search on fine-grained systems (Piccolo/NMP): the run is simulated once per
/// [`BEST_TILING_FACTORS`] candidate — `make` rebuilds the traversal for each resolved
/// candidate config — and the fastest result wins (the smaller factor on a tie). Which
/// factor wins depends on the workload: dense frontiers (PR/CC) and high-degree graphs
/// favor tiles that just fit, sparse frontiers and low-degree graphs favor 2x tiles —
/// so a fixed factor is measurably mis-calibrated for part of the figure suite, in the
/// edge-centric setting just as in the vertex-centric one (grid blocks are sized by the
/// same capacity rule). Conventional systems always prefer factor 1 — over-sized tiles
/// thrash 64 B lines — and skip the search.
///
/// Both engines funnel through here, so "Best" means the same thing on every traversal
/// order.
pub fn run_with_best_search<P, T, M>(
    graph: &Csr,
    program: &P,
    cfg: &SimConfig,
    make: M,
) -> RunResult
where
    P: VertexProgram + Sync,
    P::Value: Send + Sync,
    T: Traversal<P>,
    M: Fn(&Csr, &SimConfig) -> T,
{
    if cfg.tiling == TilingPolicy::Best
        && matches!(cfg.system, SystemKind::Nmp | SystemKind::Piccolo)
    {
        return BEST_TILING_FACTORS
            .into_iter()
            .map(|f| {
                let candidate = cfg.with_tiling(TilingPolicy::Scaled(f));
                run(graph, program, &candidate, &make(graph, &candidate))
            })
            .reduce(|best, cand| {
                // Strict `<` keeps the earlier (smaller) factor on a tie.
                if cand.accel_cycles < best.accel_cycles {
                    cand
                } else {
                    best
                }
            })
            .expect("BEST_TILING_FACTORS is non-empty");
    }
    run(graph, program, cfg, &make(graph, cfg))
}

/// A group of scatter chunks sharing one contiguous destination-vertex range.
///
/// Groups are the unit of work division for intra-run parallelism: all chunks of a group
/// run on the same worker (in ascending order within the group's `chunks` list), so every
/// `Vtemp[dst]` reduction happens on one thread in the serial order. The driver requires
/// the groups of a traversal, in order, to cover `0..num_vertices` with contiguous
/// non-overlapping `dst_range`s and to mention every chunk index exactly once; traversals
/// that cannot guarantee this are executed serially.
#[derive(Debug, Clone)]
pub struct ScatterGroup {
    /// Chunk indices of this group, in the order the serial interior executes them.
    pub chunks: Vec<usize>,
    /// Destination-vertex interval `[start, end)` the group's edges update.
    pub dst_range: (u32, u32),
    /// Load-balancing cost estimate (edges in the group).
    pub cost: u64,
}

/// A traversal order: how one iteration's scatter phase walks the graph.
///
/// Implementations chunk the edge set (destination-interval tiles for the vertex-centric
/// engine, 2-D grid blocks for the edge-centric one), emit each chunk's sequential
/// streams, and feed every traversed edge to [`ScatterContext::process_edge`]. Everything
/// else — functional semantics, caching, DRAM timing, apply, convergence, intra-run
/// parallelism — is shared and lives in [`run`].
pub trait Traversal<P: VertexProgram>: Sync {
    /// `(tile_width, num_tiles)` reported in the [`RunResult`].
    fn shape(&self) -> (u32, u32);

    /// Number of scatter chunks per iteration. The serial interior executes chunks
    /// `0..num_chunks()` in ascending order; the parallel interior replays their traffic
    /// in the same order.
    fn num_chunks(&self) -> usize;

    /// The chunk groups used to divide work between intra-run workers (see
    /// [`ScatterGroup`] for the required invariants).
    fn groups(&self) -> Vec<ScatterGroup>;

    /// Executes scatter chunk `chunk` through `ctx`.
    ///
    /// A non-empty chunk must call [`ScatterContext::begin_chunk`], generate the chunk's
    /// streams and edge work, then [`ScatterContext::end_chunk`]; an empty chunk must
    /// touch nothing.
    fn scatter_chunk(&self, chunk: usize, ctx: &mut ScatterContext<'_, P>);
}

/// One chunk's recorded memory operations, interleaved in call order.
///
/// `ops` is the run-length-encoded interleaving of stateful random accesses (addresses in
/// `randoms`) and pure pre-built requests (`pure`); replaying it through the memory path
/// reproduces the serial interior's call sequence exactly.
#[derive(Debug, Default)]
struct ChunkTrace {
    began: bool,
    tile_bytes: u64,
    ops: Vec<TraceOp>,
    randoms: Vec<u64>,
    pure: Vec<MemRequest>,
}

#[derive(Debug, Clone, Copy)]
enum TraceOp {
    /// The next `n` addresses of `randoms` go through `MemoryPath::random_access`.
    Randoms(u32),
    /// The next `n` requests of `pure` are appended to the chunk batch verbatim.
    Pure(u32),
}

impl ChunkTrace {
    fn push_random(&mut self, addr: u64) {
        self.randoms.push(addr);
        match self.ops.last_mut() {
            Some(TraceOp::Randoms(k)) if *k < u32::MAX => *k += 1,
            _ => self.ops.push(TraceOp::Randoms(1)),
        }
    }

    fn note_pure(&mut self, added: usize) {
        let mut added = added as u64;
        while added > 0 {
            let take = added.min(u32::MAX as u64) as u32;
            match self.ops.last_mut() {
                Some(TraceOp::Pure(k)) if (*k as u64 + take as u64) <= u32::MAX as u64 => {
                    *k += take;
                }
                _ => self.ops.push(TraceOp::Pure(take)),
            }
            added -= take as u64;
        }
    }
}

/// Replays one recorded chunk through the memory path and DRAM model, reproducing the
/// exact call sequence (and therefore request batch) of the serial interior. Returns the
/// chunk batch's DRAM clocks.
fn replay_chunk(
    trace: ChunkTrace,
    path: &mut MemoryPath,
    mem: &mut MemorySystem,
    mapper: &AddressMapper,
) -> u64 {
    if !trace.began {
        debug_assert!(
            trace.ops.is_empty(),
            "trace has ops but never began a chunk"
        );
        return 0;
    }
    path.begin_tile(trace.tile_bytes);
    let mut reqs = Vec::new();
    let mut randoms = trace.randoms.into_iter();
    let mut pure = trace.pure.into_iter();
    for op in trace.ops {
        match op {
            TraceOp::Randoms(k) => {
                for addr in randoms.by_ref().take(k as usize) {
                    path.random_access(addr, true, mapper, &mut reqs);
                }
            }
            TraceOp::Pure(k) => reqs.extend(pure.by_ref().take(k as usize)),
        }
    }
    path.end_tile(&mut reqs);
    if reqs.is_empty() {
        0
    } else {
        mem.service_batch(reqs).elapsed_clocks()
    }
}

/// Reorder buffer between recording workers and the replaying driver thread.
///
/// Workers publish chunk traces in whatever order they finish; the driver consumes them
/// in ascending global chunk order, blocking until the next chunk arrives. A panicking
/// worker poisons the buffer so the driver stops waiting and surfaces the panic.
struct TraceBuffer {
    slots: std::sync::Mutex<TraceSlots>,
    ready: std::sync::Condvar,
}

struct TraceSlots {
    traces: Vec<Option<ChunkTrace>>,
    failed: bool,
}

impl TraceBuffer {
    fn new(num_chunks: usize) -> Self {
        Self {
            slots: std::sync::Mutex::new(TraceSlots {
                traces: (0..num_chunks).map(|_| None).collect(),
                failed: false,
            }),
            ready: std::sync::Condvar::new(),
        }
    }

    fn publish(&self, chunk: usize, trace: ChunkTrace) {
        let mut slots = self.slots.lock().unwrap();
        debug_assert!(
            slots.traces[chunk].is_none(),
            "chunk {chunk} published twice"
        );
        slots.traces[chunk] = Some(trace);
        drop(slots);
        self.ready.notify_all();
    }

    fn poison(&self) {
        self.slots.lock().unwrap().failed = true;
        self.ready.notify_all();
    }

    /// Waits for chunk `chunk`; `None` means a worker panicked.
    fn take(&self, chunk: usize) -> Option<ChunkTrace> {
        let mut slots = self.slots.lock().unwrap();
        loop {
            if slots.failed {
                return None;
            }
            if let Some(trace) = slots.traces[chunk].take() {
                return Some(trace);
            }
            slots = self.ready.wait(slots).unwrap();
        }
    }
}

/// Poisons the buffer if the owning worker unwinds, so the driver never deadlocks on a
/// chunk that will not arrive.
struct PoisonGuard<'a>(&'a TraceBuffer);

impl Drop for PoisonGuard<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.poison();
        }
    }
}

/// Where a [`ScatterContext`]'s memory operations go: straight through the run's memory
/// path (serial interior and trace replay) or into a [`ChunkTrace`] (recording workers).
enum Backend<'a> {
    Direct {
        path: &'a mut MemoryPath,
        mem: &'a mut MemorySystem,
        reqs: Vec<MemRequest>,
        mem_clocks: u64,
    },
    Record(ChunkTrace),
}

/// Per-iteration view of the pipeline handed to a [`Traversal`].
///
/// Owns the request buffer of the chunk in flight plus mutable access to the functional
/// state (the context's `Vtemp` segment, touched set) and the memory path or trace;
/// exposes read-only access to the frontier and `Vprop`.
pub struct ScatterContext<'a, P: VertexProgram> {
    program: &'a P,
    cfg: &'a SimConfig,
    layout: &'a GraphLayout,
    mapper: &'a AddressMapper,
    num_vertices: u32,
    props: &'a [P::Value],
    active: &'a ActiveSet,
    frontier: &'a [VertexId],
    /// The `Vtemp` segment this context may update: vertices
    /// `temp_base .. temp_base + temp.len()`.
    temp: &'a mut [P::Value],
    temp_base: u32,
    touched: &'a mut BitSet,
    /// `layout.vtemp_base`, hoisted so the per-edge path is one multiply-add.
    vtemp_base: u64,
    iter_edges: u64,
    backend: Backend<'a>,
}

impl<P: VertexProgram> std::fmt::Debug for ScatterContext<'_, P> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let (mode, pending) = match &self.backend {
            Backend::Direct { reqs, .. } => ("direct", reqs.len()),
            Backend::Record(trace) => ("record", trace.pure.len() + trace.randoms.len()),
        };
        f.debug_struct("ScatterContext")
            .field("system", &self.cfg.system)
            .field("mode", &mode)
            .field("pending_requests", &pending)
            .field("iter_edges", &self.iter_edges)
            .finish()
    }
}

impl<'a, P: VertexProgram> ScatterContext<'a, P> {
    /// The simulation configuration of this run.
    pub fn cfg(&self) -> &SimConfig {
        self.cfg
    }

    /// The DRAM layout of the graph arrays.
    pub fn layout(&self) -> &GraphLayout {
        self.layout
    }

    /// The active-vertex frontier of this iteration.
    pub fn active(&self) -> &ActiveSet {
        self.active
    }

    /// The frontier in ascending vertex order, built once per iteration by the driver
    /// (so per-chunk walks do not re-scan the active bitset).
    ///
    /// The returned slice borrows the iteration, not this context, so it can be walked
    /// while calling `&mut self` methods like [`Self::process_edge`].
    pub fn frontier(&self) -> &'a [VertexId] {
        self.frontier
    }

    /// Number of vertices in the graph.
    pub fn num_vertices(&self) -> u32 {
        self.num_vertices
    }

    /// Current `Vprop[v]`.
    pub fn prop(&self, v: VertexId) -> P::Value {
        self.props[v as usize]
    }

    /// Opens a chunk whose destination slice spans `tile_bytes` of `Vtemp` (drives
    /// Piccolo-cache way partitioning).
    pub fn begin_chunk(&mut self, tile_bytes: u64) {
        match &mut self.backend {
            Backend::Direct { path, .. } => path.begin_tile(tile_bytes),
            Backend::Record(trace) => {
                trace.began = true;
                trace.tile_bytes = tile_bytes;
            }
        }
    }

    /// Closes the chunk: drains the collection MSHR and services the chunk's request
    /// batch through the DRAM model. (Recording contexts defer both to replay.)
    pub fn end_chunk(&mut self) {
        match &mut self.backend {
            Backend::Direct {
                path,
                mem,
                reqs,
                mem_clocks,
            } => {
                path.end_tile(reqs);
                if !reqs.is_empty() {
                    let batch = mem.service_batch(std::mem::take(reqs));
                    *mem_clocks += batch.elapsed_clocks();
                }
            }
            Backend::Record(_) => {}
        }
    }

    /// Processes one traversed edge `src --(weight)--> dst`: applies
    /// `Reduce(Vtemp[dst], Process(weight, Vprop[src]))` functionally, marks the
    /// destination touched, and pushes the 8 B random read-modify-write of `Vtemp[dst]`
    /// through the on-chip memory path (or records it for replay).
    pub fn process_edge(&mut self, src: VertexId, dst: VertexId, weight: Weight) {
        let res = self.program.process(weight, self.props[src as usize]);
        let slot = &mut self.temp[(dst - self.temp_base) as usize];
        *slot = self.program.reduce(*slot, res);
        self.touched.insert(dst as usize);
        self.iter_edges += 1;
        let addr = self.vtemp_base + dst as u64 * PROP_BYTES;
        match &mut self.backend {
            Backend::Direct { path, reqs, .. } => path.random_access(addr, true, self.mapper, reqs),
            Backend::Record(trace) => trace.push_random(addr),
        }
    }

    /// Emits `bytes` of sequential stream traffic starting at `base + offset` as 64 B
    /// bursts (reads, or writes when `write` is set), every byte useful.
    pub fn stream(&mut self, base: u64, offset: u64, bytes: u64, write: bool, region: Region) {
        match &mut self.backend {
            Backend::Direct { reqs, .. } => {
                stream_requests(reqs, base, offset, bytes, write, region);
            }
            Backend::Record(trace) => {
                let before = trace.pure.len();
                stream_requests(&mut trace.pure, base, offset, bytes, write, region);
                let added = trace.pure.len() - before;
                trace.note_pure(added);
            }
        }
    }

    /// Emits the row-offset and `Vprop` reads of this iteration's frontier for one chunk.
    ///
    /// Dense frontiers (PageRank, early CC iterations — or always, for Graphicionado,
    /// which has no active-vertex compaction in its prefetcher) stream sequentially.
    /// Sparse frontiers are isolated 4/8 B reads scattered over large arrays (the Fig. 3
    /// situation for BFS): a conventional memory system still fetches a 64 B burst per
    /// touched line, whereas Piccolo/NMP gather up to eight useful words per DRAM row
    /// through the same in-memory scatter/gather machinery used for the destination
    /// properties.
    ///
    /// `chunk_idx` decorrelates the per-chunk re-reads in the address map;
    /// `sources_with_edges` is the number of frontier vertices with edges in this chunk.
    pub fn frontier_reads(&mut self, chunk_idx: usize, sources_with_edges: u64) {
        let n = self.num_vertices as u64;
        let dense =
            self.active.len() as u64 * 16 >= n || self.cfg.system == SystemKind::Graphicionado;
        if dense {
            let row_vertices = if self.cfg.system == SystemKind::Graphicionado {
                n
            } else {
                self.active.len() as u64
            };
            self.stream(
                self.layout.row_offsets_base,
                (chunk_idx as u64 * n * ROW_OFFSET_BYTES) % (1 << 28),
                row_vertices * ROW_OFFSET_BYTES,
                false,
                Region::TopologyRow,
            );
            self.stream(
                self.layout.vprop_base,
                0,
                sources_with_edges * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        } else {
            let fine = matches!(self.cfg.system, SystemKind::Piccolo | SystemKind::Nmp);
            let nmp = self.cfg.system == SystemKind::Nmp;
            let layout = *self.layout;
            let items_per_op = self.cfg.dram.fim.items_per_op;
            // The frontier slice is the active set in ascending order; walking it beats
            // re-scanning the bitset and produces the identical address sequence.
            let addrs = self.frontier.iter().flat_map(move |&u| {
                [
                    (layout.row_offset_addr(u), ROW_OFFSET_BYTES as u32),
                    (layout.vprop_addr(u), PROP_BYTES as u32),
                ]
            });
            match &mut self.backend {
                Backend::Direct { reqs, .. } => {
                    sparse_frontier_requests(reqs, addrs, fine, nmp, self.mapper, items_per_op);
                }
                Backend::Record(trace) => {
                    let before = trace.pure.len();
                    sparse_frontier_requests(
                        &mut trace.pure,
                        addrs,
                        fine,
                        nmp,
                        self.mapper,
                        items_per_op,
                    );
                    let added = trace.pure.len() - before;
                    trace.note_pure(added);
                }
            }
        }
    }

    /// Number of requests buffered for the chunk in flight (direct contexts only).
    fn has_pending_requests(&self) -> bool {
        match &self.backend {
            Backend::Direct { reqs, .. } => !reqs.is_empty(),
            Backend::Record(_) => false,
        }
    }
}

/// Emits `bytes` of sequential stream traffic starting at `base + offset` as 64 B reads
/// (or writes), marking every byte useful.
pub(crate) fn stream_requests(
    out: &mut Vec<MemRequest>,
    base: u64,
    offset: u64,
    bytes: u64,
    write: bool,
    region: Region,
) {
    if bytes == 0 {
        return;
    }
    let start = (base + offset) & !63;
    let bursts = bytes.div_ceil(64);
    for i in 0..bursts {
        let addr = start + i * 64;
        out.push(if write {
            MemRequest::Write {
                addr,
                useful_bytes: 64,
                region,
            }
        } else {
            MemRequest::Read {
                addr,
                useful_bytes: 64,
                region,
            }
        });
    }
}

/// Emits the per-tile reads of isolated (sparse-frontier) 4/8 B accesses: row-grouped
/// in-memory gathers on fine-grained systems, one 64 B line read per touched line
/// otherwise.
pub(crate) fn sparse_frontier_requests(
    out: &mut Vec<MemRequest>,
    addrs: impl Iterator<Item = (u64, u32)>,
    fine_grained: bool,
    nmp: bool,
    mapper: &AddressMapper,
    items_per_op: u32,
) {
    if fine_grained {
        let mut by_row: std::collections::BTreeMap<piccolo_dram::RowId, Vec<u16>> =
            std::collections::BTreeMap::new();
        let mut order = Vec::new();
        for (addr, _useful) in addrs {
            let loc = mapper.decompose(addr);
            let row = mapper.row_id_of(&loc);
            let entry = by_row.entry(row).or_insert_with(|| {
                order.push(row);
                Vec::new()
            });
            let off = loc.word_offset();
            if !entry.contains(&off) {
                entry.push(off);
            }
        }
        for row in order {
            for chunk in by_row[&row].chunks(items_per_op.max(1) as usize) {
                out.push(if nmp {
                    MemRequest::GatherNmp {
                        row,
                        offsets: chunk.to_vec(),
                        region: Region::TopologyRow,
                    }
                } else {
                    MemRequest::GatherFim {
                        row,
                        offsets: chunk.to_vec(),
                        region: Region::TopologyRow,
                    }
                });
            }
        }
    } else {
        let mut last_line = u64::MAX;
        for (addr, useful) in addrs {
            let line = addr & !63;
            if line == last_line {
                continue;
            }
            last_line = line;
            out.push(MemRequest::Read {
                addr: line,
                useful_bytes: useful,
                region: Region::TopologyRow,
            });
        }
    }
}

/// A validated intra-run work division: contiguous group segments, one per worker.
struct ScatterPlan {
    segments: Vec<Segment>,
}

struct Segment {
    /// Chunk indices this worker records, in execution order.
    chunks: Vec<usize>,
    /// Destination-vertex interval `[dst_start, dst_end)` covered by the segment.
    dst_start: u32,
    dst_end: u32,
}

impl ScatterPlan {
    /// Builds a plan for `workers` threads, or `None` when the groups violate the
    /// [`ScatterGroup`] invariants (fall back to the serial interior) or the division
    /// degenerates to one worker.
    fn new(
        groups: &[ScatterGroup],
        workers: usize,
        num_vertices: u32,
        num_chunks: usize,
    ) -> Option<ScatterPlan> {
        if workers <= 1 || groups.len() <= 1 {
            return None;
        }
        // Validate: contiguous non-overlapping coverage of 0..num_vertices, and every
        // chunk index mentioned exactly once.
        let mut next_dst = 0u32;
        let mut seen = vec![false; num_chunks];
        for g in groups {
            if g.dst_range.0 != next_dst || g.dst_range.1 < g.dst_range.0 {
                return None;
            }
            next_dst = g.dst_range.1;
            for &c in &g.chunks {
                if c >= num_chunks || seen[c] {
                    return None;
                }
                seen[c] = true;
            }
        }
        if next_dst != num_vertices || !seen.iter().all(|&s| s) {
            return None;
        }

        // Greedy contiguous cost-balanced partition of the group list.
        let w = workers.min(groups.len());
        let total: u64 = groups.iter().map(|g| g.cost.max(1)).sum();
        let mut segments: Vec<Segment> = Vec::with_capacity(w);
        let mut cur = Segment {
            chunks: Vec::new(),
            dst_start: 0,
            dst_end: 0,
        };
        let mut acc = 0u64;
        for (i, g) in groups.iter().enumerate() {
            if cur.chunks.is_empty() {
                cur.dst_start = g.dst_range.0;
            }
            cur.chunks.extend_from_slice(&g.chunks);
            cur.dst_end = g.dst_range.1;
            acc += g.cost.max(1);
            let made = segments.len();
            let groups_left = groups.len() - i - 1;
            let segs_left = w - made - 1;
            let hit_target = acc * w as u64 >= total * (made as u64 + 1);
            if made + 1 < w && (hit_target || groups_left == segs_left) {
                segments.push(std::mem::replace(
                    &mut cur,
                    Segment {
                        chunks: Vec::new(),
                        dst_start: 0,
                        dst_end: 0,
                    },
                ));
            }
        }
        if !cur.chunks.is_empty() {
            segments.push(cur);
        }
        if segments.len() <= 1 {
            return None;
        }
        Some(ScatterPlan { segments })
    }
}

/// Runs `program` on `graph` under `cfg` with the given traversal order and returns
/// timing and traffic statistics.
///
/// ## Timing model
///
/// Per iteration the driver accumulates the DRAM service time of all generated requests
/// (per-chunk batches) and the PE-array compute time; with prefetching enabled the two
/// overlap (`max`), without it they serialize (`+`), which reproduces the ~20 % penalty
/// of Fig. 20b. The graph-processing accelerators the paper builds on are throughput
/// oriented: per-request latency is hidden by deep prefetch/miss queues, so makespan
/// rather than per-access latency determines performance.
///
/// ## Apply-phase traffic
///
/// Scratchpad accelerators apply over every vertex of every tile (Algorithm 1 line 6):
/// the whole `Vprop` array is re-read each iteration. Cache-based systems read the
/// `Vtemp`/`Vprop` pair of touched destinations only. Updated entries are written back
/// in both cases. This policy is shared by every traversal order.
///
/// ## Intra-run parallelism
///
/// When [`crate::parallel::intra_jobs`] is above 1 the scatter chunks are recorded by
/// worker threads (one contiguous [`ScatterGroup`] segment each, with a disjoint `Vtemp`
/// slice) and replayed here in ascending chunk order, and the apply phase runs over
/// disjoint contiguous `Vprop` ranges whose activation lists are merged in range order.
/// Both reductions are in fixed order, so the result is byte-identical to the serial
/// interior for any thread count.
pub fn run<P, T>(graph: &Csr, program: &P, cfg: &SimConfig, traversal: &T) -> RunResult
where
    P: VertexProgram + Sync,
    P::Value: Send + Sync,
    T: Traversal<P>,
{
    let n = graph.num_vertices();
    let layout = GraphLayout::new(graph);
    let mut path = MemoryPath::new(cfg.system, cfg.cache, &cfg.accel, &cfg.dram);
    let mut mem = MemorySystem::new(cfg.dram);
    let mapper = *mem.mapper();

    // Functional state (mirrors piccolo_algo::run_vcm).
    let mut props = VertexProps::new(n, program.initial_value(0, graph));
    for v in 0..n {
        props[v] = program.initial_value(v, graph);
    }
    let mut active = program.initial_active(graph);

    // Per-iteration scratch, allocated once and reused (arena-style): `Vtemp`, the
    // touched-destination set and the sorted frontier list.
    let mut temp = VertexProps::new(n, program.temp_identity(0, graph));
    let mut touched = BitSet::new(n as usize);
    let mut frontier: Vec<VertexId> = Vec::new();

    let num_chunks = traversal.num_chunks();
    let intra = parallel::intra_jobs();
    let plan = if intra > 1 {
        ScatterPlan::new(&traversal.groups(), intra, n, num_chunks)
    } else {
        None
    };

    let mut total_mem_clocks = 0u64;
    let mut compute_cycles = 0u64;
    let mut accel_cycles = 0u64;
    let mut edges_processed = 0u64;
    let mut iterations = 0u32;
    let mut phases = PhaseBreakdown::default();
    // Host wall-clock per phase, accumulated run-locally and published once at
    // the end via `parallel::record_run_profile` so the profiler can attribute
    // timings to this specific run (thread-local) as well as process-wide.
    let mut host_profile = parallel::PhaseProfile::default();
    let all_active_algorithm = program.algorithm().is_all_active();

    for _iter in 0..cfg.max_iterations {
        if active.is_empty() {
            break;
        }
        iterations += 1;

        // Frontier + scratch rebuild (word-level bitset scan; reused allocations).
        let t_frontier = Instant::now();
        frontier.clear();
        active.for_each_sorted(|v| frontier.push(v));
        for v in 0..n {
            temp[v] = program.temp_identity(v, graph);
        }
        touched.clear();
        host_profile.frontier_ns += t_frontier.elapsed().as_nanos() as u64;

        // Scatter phase (Algorithm 1 lines 1-5), in the traversal's order.
        let t_scatter = Instant::now();
        let (iter_scatter_clocks, iter_edges) = match &plan {
            None => {
                let mut ctx = ScatterContext {
                    program,
                    cfg,
                    layout: &layout,
                    mapper: &mapper,
                    num_vertices: n,
                    props: props.as_slice(),
                    active: &active,
                    frontier: &frontier,
                    temp: temp.as_mut_slice(),
                    temp_base: 0,
                    touched: &mut touched,
                    vtemp_base: layout.vtemp_base,
                    iter_edges: 0,
                    backend: Backend::Direct {
                        path: &mut path,
                        mem: &mut mem,
                        reqs: Vec::new(),
                        mem_clocks: 0,
                    },
                };
                for chunk in 0..num_chunks {
                    traversal.scatter_chunk(chunk, &mut ctx);
                }
                debug_assert!(
                    !ctx.has_pending_requests(),
                    "traversal left an unclosed chunk"
                );
                if ctx.has_pending_requests() {
                    // Fail closed in release builds: a traversal that forgot its final
                    // end_chunk() must not silently drop traffic from the timing model.
                    ctx.end_chunk();
                }
                let iter_edges = ctx.iter_edges;
                let clocks = match ctx.backend {
                    Backend::Direct { mem_clocks, .. } => mem_clocks,
                    Backend::Record(_) => unreachable!("serial interior is direct"),
                };
                (clocks, iter_edges)
            }
            Some(plan) => parallel_scatter(
                plan,
                traversal,
                program,
                cfg,
                &layout,
                &mapper,
                n,
                &props,
                &active,
                &frontier,
                &mut temp,
                &mut touched,
                &mut path,
                &mut mem,
                num_chunks,
            ),
        };
        host_profile.scatter_ns += t_scatter.elapsed().as_nanos() as u64;

        // Apply phase (Algorithm 1 lines 6-10), functionally over every vertex, with
        // memory traffic charged for touched destinations only.
        let t_apply = Instant::now();
        let mut next_active = ActiveSet::new(n);
        let mut updated = 0u64;
        match &plan {
            None => {
                for v in 0..n {
                    let new = program.apply(props[v], temp[v], program.vconst(v, graph));
                    if program.changed(props[v], new) {
                        props[v] = new;
                        next_active.activate(v);
                        updated += 1;
                    }
                }
            }
            Some(plan) => {
                let workers = plan.segments.len();
                let per_range = parallel_apply(graph, program, &mut props, &temp, n, workers);
                // Merge in range order: ranges are ascending and disjoint, so the merged
                // activation order is ascending — exactly the serial order.
                for (changed, count) in per_range {
                    for v in changed {
                        next_active.activate(v);
                    }
                    updated += count;
                }
            }
        }
        let touched_count = touched.count() as u64;
        let mut apply_reqs = Vec::new();
        if path.is_scratchpad() {
            stream_requests(
                &mut apply_reqs,
                layout.vprop_base,
                0,
                n as u64 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        } else {
            stream_requests(
                &mut apply_reqs,
                layout.vtemp_base,
                0,
                touched_count * 2 * PROP_BYTES,
                false,
                Region::PropertySequential,
            );
        }
        stream_requests(
            &mut apply_reqs,
            layout.vprop_base,
            0,
            updated * PROP_BYTES,
            true,
            Region::PropertySequential,
        );
        let mut iter_apply_clocks = 0u64;
        if !apply_reqs.is_empty() {
            iter_apply_clocks += mem.service_batch(apply_reqs).elapsed_clocks();
        }
        host_profile.apply_ns += t_apply.elapsed().as_nanos() as u64;

        // Timing: compute overlaps memory when the prefetcher is enabled.
        let iter_mem_clocks = iter_scatter_clocks + iter_apply_clocks;
        let iter_compute = cfg
            .accel
            .compute_cycles(iter_edges, touched_count + updated);
        let iter_mem_ns = mem.clocks_to_ns(iter_mem_clocks);
        let iter_mem_accel_cycles = (iter_mem_ns * cfg.accel.clock_ghz).ceil() as u64;
        accel_cycles += if cfg.accel.prefetch {
            iter_compute.max(iter_mem_accel_cycles)
        } else {
            iter_compute + iter_mem_accel_cycles
        };
        compute_cycles += iter_compute;
        total_mem_clocks += iter_mem_clocks;
        phases.scatter_mem_clocks += iter_scatter_clocks;
        phases.apply_mem_clocks += iter_apply_clocks;
        edges_processed += iter_edges;

        let t_rebuild = Instant::now();
        active = if all_active_algorithm && updated > 0 {
            ActiveSet::all(n)
        } else if all_active_algorithm {
            ActiveSet::new(n)
        } else {
            next_active
        };
        host_profile.frontier_ns += t_rebuild.elapsed().as_nanos() as u64;
    }

    // Final flush: dirty vertex data must reach memory.
    let mut final_reqs = Vec::new();
    path.finish(&mapper, &mut final_reqs);
    if !final_reqs.is_empty() {
        let batch = mem.service_batch(final_reqs);
        total_mem_clocks += batch.elapsed_clocks();
        phases.flush_mem_clocks += batch.elapsed_clocks();
        accel_cycles += (mem.clocks_to_ns(batch.elapsed_clocks()) * cfg.accel.clock_ghz) as u64;
    }

    let (tile_width, num_tiles) = traversal.shape();
    let mem_ns = mem.clocks_to_ns(total_mem_clocks);
    parallel::record_run_profile(host_profile);
    RunResult {
        system: cfg.system,
        accel_cycles,
        compute_cycles,
        mem_ns,
        elapsed_ns: accel_cycles as f64 / cfg.accel.clock_ghz,
        iterations,
        edges_processed,
        mem_stats: *mem.stats(),
        cache_stats: path.cache_stats(),
        tile_width,
        num_tiles,
        phases,
    }
}

/// The parallel scatter interior: workers record their segments' chunks, the calling
/// thread replays all chunks in ascending order through the single memory path, then
/// worker results (touched sets, edge counts) are folded in fixed worker-index order.
/// Returns `(scatter DRAM clocks, edges processed)`.
#[allow(clippy::too_many_arguments)]
fn parallel_scatter<P, T>(
    plan: &ScatterPlan,
    traversal: &T,
    program: &P,
    cfg: &SimConfig,
    layout: &GraphLayout,
    mapper: &AddressMapper,
    n: u32,
    props: &VertexProps<P::Value>,
    active: &ActiveSet,
    frontier: &[VertexId],
    temp: &mut VertexProps<P::Value>,
    touched: &mut BitSet,
    path: &mut MemoryPath,
    mem: &mut MemorySystem,
    num_chunks: usize,
) -> (u64, u64)
where
    P: VertexProgram + Sync,
    P::Value: Send + Sync,
    T: Traversal<P>,
{
    let buffer = TraceBuffer::new(num_chunks);
    let mut scatter_clocks = 0u64;
    let mut iter_edges = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(plan.segments.len());
        let mut rest = temp.as_mut_slice();
        let mut consumed = 0u32;
        for seg in &plan.segments {
            debug_assert_eq!(seg.dst_start, consumed, "segments must tile Vtemp");
            let seg_len = (seg.dst_end - seg.dst_start) as usize;
            let (seg_temp, tail) = rest.split_at_mut(seg_len);
            rest = tail;
            consumed = seg.dst_end;
            let temp_base = seg.dst_start;
            let buffer_ref = &buffer;
            let props_slice = props.as_slice();
            handles.push(s.spawn(move || {
                let _guard = PoisonGuard(buffer_ref);
                let mut seg_touched = BitSet::new(n as usize);
                let mut seg_edges = 0u64;
                for &chunk in &seg.chunks {
                    let mut ctx = ScatterContext {
                        program,
                        cfg,
                        layout,
                        mapper,
                        num_vertices: n,
                        props: props_slice,
                        active,
                        frontier,
                        temp: &mut *seg_temp,
                        temp_base,
                        touched: &mut seg_touched,
                        vtemp_base: layout.vtemp_base,
                        iter_edges: 0,
                        backend: Backend::Record(ChunkTrace::default()),
                    };
                    traversal.scatter_chunk(chunk, &mut ctx);
                    seg_edges += ctx.iter_edges;
                    let Backend::Record(trace) = ctx.backend else {
                        unreachable!("worker contexts record")
                    };
                    buffer_ref.publish(chunk, trace);
                }
                (seg_touched, seg_edges)
            }));
        }
        debug_assert!(rest.is_empty(), "segments must cover every vertex");

        // Replay in ascending global chunk order — call-for-call the serial sequence.
        for chunk in 0..num_chunks {
            match buffer.take(chunk) {
                Some(trace) => scatter_clocks += replay_chunk(trace, path, mem, mapper),
                None => break, // a worker panicked; surface its payload below
            }
        }

        for handle in handles {
            match handle.join() {
                Ok((seg_touched, seg_edges)) => {
                    touched.union_with(&seg_touched);
                    iter_edges += seg_edges;
                }
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    (scatter_clocks, iter_edges)
}

/// The parallel apply interior: disjoint contiguous `Vprop` ranges, one per worker; each
/// worker returns its ascending changed-vertex list and update count, in range order.
fn parallel_apply<P>(
    graph: &Csr,
    program: &P,
    props: &mut VertexProps<P::Value>,
    temp: &VertexProps<P::Value>,
    n: u32,
    workers: usize,
) -> Vec<(Vec<VertexId>, u64)>
where
    P: VertexProgram + Sync,
    P::Value: Send + Sync,
{
    let per_worker = (n as usize).div_ceil(workers.max(1)).max(1);
    let temp_slice = temp.as_slice();
    let mut out = Vec::with_capacity(workers);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(workers);
        let mut rest = props.as_mut_slice();
        let mut base = 0usize;
        while !rest.is_empty() {
            let take = per_worker.min(rest.len());
            let (range, tail) = rest.split_at_mut(take);
            rest = tail;
            let lo = base as u32;
            base += take;
            handles.push(s.spawn(move || {
                let mut changed = Vec::new();
                let mut count = 0u64;
                for (i, slot) in range.iter_mut().enumerate() {
                    let v = lo + i as u32;
                    let new =
                        program.apply(*slot, temp_slice[v as usize], program.vconst(v, graph));
                    if program.changed(*slot, new) {
                        *slot = new;
                        changed.push(v);
                        count += 1;
                    }
                }
                (changed, count)
            }));
        }
        for handle in handles {
            match handle.join() {
                Ok(pair) => out.push(pair),
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    out
}

#[cfg(test)]
mod send_audit {
    //! Compile-time audit that the whole simulation pipeline is per-run owned: a worker
    //! thread must be able to own a run's memory path (with its boxed cache), DRAM
    //! system and result. Fails to compile if any layer grows shared mutability.
    use super::*;
    use crate::config::SimConfig;

    fn assert_send<T: Send>() {}
    fn assert_sync<T: Sync>() {}

    #[test]
    fn simulation_state_is_send() {
        assert_send::<MemoryPath>();
        assert_send::<MemorySystem>();
        assert_send::<RunResult>();
        assert_send::<SimConfig>();
        // Shared read-only inputs of a sweep: one graph serves many worker threads.
        assert_sync::<Csr>();
        assert_sync::<SimConfig>();
        // Intra-run machinery: traces cross from recording workers to the replaying
        // driver thread through the reorder buffer.
        assert_send::<ChunkTrace>();
        assert_sync::<TraceBuffer>();
    }
}
