//! Graph-processing accelerator models for the Piccolo reproduction.
//!
//! This crate ties the substrates together into the six systems the paper evaluates
//! (Fig. 10): Graphicionado, GraphDyns (SPM), GraphDyns (Cache), NMP, PIM and Piccolo,
//! plus the fine-grained cache variants of Fig. 11 and the edge-centric accelerator of
//! Fig. 19a.
//!
//! The central entry point is [`engine::simulate`], which executes a vertex program
//! functionally while pushing its memory accesses through the system's on-chip memory
//! path ([`path::MemoryPath`]) and the command-level DRAM model of `piccolo-dram`.
//!
//! # Example
//!
//! ```
//! use piccolo_accel::{simulate, SimConfig, SystemKind};
//! use piccolo_algo::Bfs;
//! use piccolo_graph::generate;
//!
//! let graph = generate::kronecker(10, 4, 1);
//! let cfg = SimConfig::for_system(SystemKind::Piccolo, 12).with_max_iterations(10);
//! let result = simulate(&graph, &Bfs::new(0), &cfg);
//! assert!(result.accel_cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod edge_centric;
pub mod engine;
pub mod layout;
pub mod parallel;
pub mod path;
pub mod pipeline;

pub use config::{AccelConfig, CacheKind, SimConfig, SystemKind, TilingPolicy};
pub use edge_centric::{simulate_edge_centric, EdgeCentric};
pub use engine::{simulate, VertexCentric};
pub use layout::GraphLayout;
pub use parallel::{
    intra_jobs, phase_profile, record_run_profile, reset_phase_profile, set_intra_jobs,
    take_thread_phase_profile, PhaseProfile,
};
pub use path::MemoryPath;
pub use pipeline::{
    resolve_tiling, run_with_best_search, PhaseBreakdown, RunResult, ScatterContext, ScatterGroup,
    Traversal, BEST_TILING_FACTORS,
};
