//! Integration test comparing the evaluated systems end to end on a PageRank workload.

use piccolo_accel::{simulate, SimConfig, SystemKind};
use piccolo_algo::PageRank;
use piccolo_graph::generate;

fn run(system: SystemKind) -> piccolo_accel::RunResult {
    let g = generate::kronecker(14, 8, 7);
    let cfg = SimConfig::for_system(system, 12).with_max_iterations(2);
    simulate(&g, &PageRank::default(), &cfg)
}

#[test]
fn report_and_compare_systems() {
    let base = run(SystemKind::GraphDynsCache);
    let pic = run(SystemKind::Piccolo);
    let pim = run(SystemKind::Pim);
    for r in [&base, &pic, &pim] {
        eprintln!(
            "{:<18} cycles={:>10} compute={:>9} mem_ns={:>12.0} offchip={:>10} useful%={:>5.1} \
             rd={:>8} wr={:>7} act={:>8} gathers={:>7} scatters={:>6} hit%={:>5.1} tiles={}",
            r.system.name(),
            r.accel_cycles,
            r.compute_cycles,
            r.mem_ns,
            r.mem_stats.offchip_bytes,
            100.0 * r.mem_stats.useful_fraction(),
            r.mem_stats.read_transactions,
            r.mem_stats.write_transactions,
            r.mem_stats.activations,
            r.mem_stats.fim_gathers,
            r.mem_stats.fim_scatters,
            100.0 * r.cache_stats.hit_rate(),
            r.num_tiles,
        );
    }
    assert!(pic.mem_stats.offchip_bytes < base.mem_stats.offchip_bytes);
    assert!(pic.accel_cycles < base.accel_cycles);
    assert!(pim.accel_cycles > pic.accel_cycles);
}

#[test]
fn tile_factor_sweep_diagnostic() {
    use piccolo_accel::TilingPolicy;
    let g = generate::kronecker(13, 8, 7);
    for factor in [1u32, 2, 4] {
        let cfg = SimConfig::for_system(SystemKind::Piccolo, 12)
            .with_max_iterations(3)
            .with_tiling(TilingPolicy::Scaled(factor));
        let r = simulate(&g, &PageRank::default(), &cfg);
        eprintln!(
            "piccolo x{:<2} cycles={:>9} offchip={:>9} hit%={:>5.1} gathers={:>7} tiles={}",
            factor,
            r.accel_cycles,
            r.mem_stats.offchip_bytes,
            100.0 * r.cache_stats.hit_rate(),
            r.mem_stats.fim_gathers,
            r.num_tiles
        );
        let b = SimConfig::for_system(SystemKind::GraphDynsCache, 12)
            .with_max_iterations(3)
            .with_tiling(TilingPolicy::Scaled(factor));
        let rb = simulate(&g, &PageRank::default(), &b);
        eprintln!(
            "base    x{:<2} cycles={:>9} offchip={:>9} hit%={:>5.1} tiles={}",
            factor,
            rb.accel_cycles,
            rb.mem_stats.offchip_bytes,
            100.0 * rb.cache_stats.hit_rate(),
            rb.num_tiles
        );
    }
}

#[test]
fn sparse_algorithm_diagnostic() {
    use piccolo_algo::{Bfs, Sssp};
    let g = generate::kronecker(13, 8, 7);
    for (name, sys) in [
        ("base", SystemKind::GraphDynsCache),
        ("piccolo", SystemKind::Piccolo),
        ("nmp", SystemKind::Nmp),
        ("pim", SystemKind::Pim),
        ("spm", SystemKind::GraphDynsSpm),
    ] {
        let cfg = SimConfig::for_system(sys, 12).with_max_iterations(40);
        let b = simulate(&g, &Bfs::new(0), &cfg);
        let s = simulate(&g, &Sssp::new(0), &cfg);
        eprintln!("{name:<8} BFS cycles={:>9} offchip={:>9} hit%={:>5.1} | SSSP cycles={:>9} offchip={:>9} hit%={:>5.1}",
            b.accel_cycles, b.mem_stats.offchip_bytes, 100.0*b.cache_stats.hit_rate(),
            s.accel_cycles, s.mem_stats.offchip_bytes, 100.0*s.cache_stats.hit_rate());
    }
}
