//! Generate, convert, inspect and validate graph files.
//!
//! ```text
//! graphtool gen          <out> --vertices N --edges M [--seed S]
//! graphtool convert      <in> <out.pcsr|out.pcsr.d> [--format edgelist|snap|mtx] [--partition N]
//! graphtool info         <file>          [--format edgelist|snap|mtx]
//! graphtool verify       <file.pcsr|dir.pcsr.d>
//! graphtool events-check <events.jsonl>
//! ```
//!
//! `gen` writes a deterministic uniform-random graph — a weighted TSV edge list, or a
//! `.pcsr` snapshot if the output ends in `.pcsr` — for CI jobs that need a graph of a
//! known size without shipping one. `convert` parses a text graph (plain, `.gz` or
//! `.zst` — sniffed by magic bytes) or re-validates an existing snapshot, then writes
//! a single-file `.pcsr` snapshot or, with `--partition N` or a `.pcsr.d` output path,
//! a partitioned `.pcsr.d/` directory. `info` prints vertex/edge counts and degree
//! statistics for any supported input, plus the tile table for `.pcsr.d/`
//! directories. `verify` fully checks a snapshot's (or every tile's and the
//! manifest's) magic, version, checksums and structural invariants. `events-check`
//! validates a `piccolo-events/v1` log written by `repro --events` — checksums,
//! schema, span balance and the unit count against the campaign plan
//! (`docs/observability.md`). Exit codes: 0 success, 1 bad input file, 2 usage error.
//! Diagnostics go through the `piccolo-obs` stderr sink (`--log-level quiet|error|
//! warn|info|debug`); results stay on stdout. Usage/unknown-flag errors follow the
//! shared driver surface ([`piccolo_bench::cli`]), uniform across all binaries.

#![forbid(unsafe_code)]

use piccolo_bench::cli::{CliParser, CommonOpts, FlagSet};
use piccolo_graph::Csr;
use piccolo_io::{
    is_pcsr_dir, load_pcsr, load_pcsr_dir, load_text, pcsr_dir_info, save_pcsr, save_pcsr_dir,
    verify_pcsr_dir, IoError, TextFormat,
};
use piccolo_obs as obs;
use std::io::Write;
use std::path::Path;

fn parser() -> CliParser {
    CliParser::new(
        "graphtool",
        format!(
            "graphtool gen <out> --vertices N --edges M [--seed S]\n       \
             graphtool convert <in> <out.pcsr|out.pcsr.d> [--format edgelist|snap|mtx] [--partition N]\n       \
             graphtool info <file> [--format edgelist|snap|mtx]\n       \
             graphtool verify <file.pcsr|dir.pcsr.d>\n       \
             graphtool events-check <events.jsonl>\n       \
             common: {}",
            FlagSet {
                log_level: true,
                ..FlagSet::default()
            }
            .usage_fragment()
        ),
    )
}

fn fail(err: &IoError) -> ! {
    obs::error(format!("graphtool: {err}"));
    obs::flush_sinks();
    std::process::exit(1);
}

fn is_pcsr(path: &Path) -> bool {
    path.extension().and_then(|e| e.to_str()) == Some("pcsr")
}

/// Whether `path` names a partitioned snapshot: an existing `.pcsr.d/` directory, or
/// (for outputs that do not exist yet) a `.pcsr.d` suffix.
fn names_pcsr_dir(path: &Path) -> bool {
    is_pcsr_dir(path)
        || path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".pcsr.d"))
}

/// Loads any supported file: `.pcsr` / `.pcsr.d` directly, everything else through
/// the text parsers (no snapshot cache — the tool always reads what it is pointed at).
fn load_any(path: &Path, format: Option<TextFormat>) -> Result<Csr, IoError> {
    if names_pcsr_dir(path) {
        load_pcsr_dir(path)
    } else if is_pcsr(path) {
        load_pcsr(path)
    } else {
        let format = format.unwrap_or_else(|| TextFormat::from_path(path));
        Ok(load_text(path, format)?.to_csr())
    }
}

fn print_info(path: &Path, g: &Csr) {
    println!("file:        {}", path.display());
    println!("vertices:    {}", g.num_vertices());
    println!("edges:       {}", g.num_edges());
    // lint: allow(float-format-via-codec, human-facing CLI info line — never parsed back)
    println!("avg degree:  {:.3}", g.average_degree());
    println!("max degree:  {}", g.max_degree());
}

/// Writes `g` as a weighted TSV edge list (`src\tdst\tweight`), the round-trippable
/// text form of the graph: re-ingesting it through any text path reproduces the exact
/// CSR, so CI can compare compressed / converted / partitioned pipelines byte-for-byte.
fn write_tsv(path: &Path, g: &Csr) -> Result<(), IoError> {
    let wrap = |e: std::io::Error| IoError::Io {
        path: path.to_path_buf(),
        source: e,
    };
    let file = std::fs::File::create(path).map_err(wrap)?;
    let mut out = std::io::BufWriter::new(file);
    for e in g.iter_edges() {
        writeln!(out, "{}\t{}\t{}", e.src, e.dst, e.weight).map_err(wrap)?;
    }
    out.flush().map_err(wrap)
}

fn main() {
    obs::init_stderr(obs::LevelFilter::Info);
    let cli = parser();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CommonOpts::new(FlagSet {
        log_level: true,
        ..FlagSet::default()
    });
    let mut positional: Vec<&str> = Vec::new();
    let mut format: Option<TextFormat> = None;
    let mut partition: Option<usize> = None;
    let mut vertices: Option<u32> = None;
    let mut edges: Option<u64> = None;
    let mut seed: u64 = 1;
    fn num_flag(
        it: &mut std::iter::Peekable<std::slice::Iter<'_, String>>,
        name: &str,
        cli: &CliParser,
    ) -> u64 {
        match it.next().and_then(|v| v.parse::<u64>().ok()) {
            Some(n) if n > 0 => n,
            _ => cli.fail(&format!("{name} needs a positive integer")),
        }
    }
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if opts.accept(arg, &mut it, &cli) {
            continue;
        }
        match arg.as_str() {
            "--format" => match it.next().map(|v| TextFormat::parse_name(v)) {
                Some(Some(f)) => format = Some(f),
                _ => cli.fail("--format expects edgelist|snap|mtx"),
            },
            "--partition" => partition = Some(num_flag(&mut it, "--partition", &cli) as usize),
            "--vertices" => match u32::try_from(num_flag(&mut it, "--vertices", &cli)) {
                Ok(v) => vertices = Some(v),
                Err(_) => cli.fail("--vertices value does not fit in u32"),
            },
            "--edges" => edges = Some(num_flag(&mut it, "--edges", &cli)),
            "--seed" => seed = num_flag(&mut it, "--seed", &cli),
            other if other.starts_with("--") => cli.unknown_flag(other),
            other => positional.push(other),
        }
    }

    match positional.as_slice() {
        ["gen", output] => {
            let output = Path::new(output);
            let (Some(vertices), Some(edges)) = (vertices, edges) else {
                cli.fail("gen needs --vertices and --edges")
            };
            let g = piccolo_graph::generate::uniform(vertices, edges, seed);
            if is_pcsr(output) {
                save_pcsr(output, &g).unwrap_or_else(|e| fail(&e));
            } else {
                write_tsv(output, &g).unwrap_or_else(|e| fail(&e));
            }
            println!(
                "wrote {} ({} vertices, {} edges, seed {seed})",
                output.display(),
                g.num_vertices(),
                g.num_edges()
            );
        }
        ["convert", input, output] => {
            let input = Path::new(input);
            let output = Path::new(output);
            let g = load_any(input, format).unwrap_or_else(|e| fail(&e));
            if partition.is_some() || names_pcsr_dir(output) {
                let parts = partition.unwrap_or(4);
                save_pcsr_dir(output, &g, parts).unwrap_or_else(|e| fail(&e));
                println!(
                    "wrote {} ({} vertices, {} edges, {} partition(s))",
                    output.display(),
                    g.num_vertices(),
                    g.num_edges(),
                    parts.min(g.num_vertices().max(1) as usize)
                );
            } else {
                save_pcsr(output, &g).unwrap_or_else(|e| fail(&e));
                println!(
                    "wrote {} ({} vertices, {} edges)",
                    output.display(),
                    g.num_vertices(),
                    g.num_edges()
                );
            }
        }
        ["info", file] => {
            let file = Path::new(file);
            let g = load_any(file, format).unwrap_or_else(|e| fail(&e));
            print_info(file, &g);
            if is_pcsr_dir(file) {
                let info = pcsr_dir_info(file).unwrap_or_else(|e| fail(&e));
                println!("partitions:  {}", info.parts.len());
                for p in &info.parts {
                    println!(
                        "  part {:>3}: vertices [{}, {}), {} edges, {} bytes ({})",
                        p.index, p.start, p.end, p.edges, p.bytes, p.file
                    );
                }
            }
        }
        ["verify", file] => {
            let file = Path::new(file);
            if is_pcsr_dir(file) {
                // Per-tile file hashes against the manifest, then a full assembling
                // load (per-section checksums + whole-graph structural invariants).
                let info = verify_pcsr_dir(file).unwrap_or_else(|e| fail(&e));
                println!(
                    "OK: {} ({} vertices, {} edges, {} partition(s), checksums valid)",
                    file.display(),
                    info.num_vertices,
                    info.num_edges,
                    info.parts.len()
                );
                return;
            }
            if !is_pcsr(file) {
                cli.fail("verify expects a .pcsr file or a .pcsr.d directory");
            }
            // load_pcsr checks magic, version, every section checksum, and the CSR
            // structural invariants (monotone offsets, in-range columns).
            let g = load_pcsr(file).unwrap_or_else(|e| fail(&e));
            println!(
                "OK: {} ({} vertices, {} edges, checksums valid)",
                file.display(),
                g.num_vertices(),
                g.num_edges()
            );
        }
        ["events-check", file] => {
            // Checksums, header schema, span balance, monotone seq/t_ns, and the
            // unit-span count against the campaign plan (`piccolo_obs::check`).
            let report = obs::check::check_events(Path::new(file)).unwrap_or_else(|e| {
                obs::error(format!("graphtool: cannot read {file}: {e}"));
                obs::flush_sinks();
                std::process::exit(1);
            });
            println!("{file}: {report}");
            for err in &report.errors {
                obs::error(format!("  {err}"));
            }
            if report.errors_truncated > 0 {
                obs::error(format!(
                    "  ... and {} more error(s)",
                    report.errors_truncated
                ));
            }
            if report.clean() {
                println!("OK: event log is schema-valid, checksum-clean and span-balanced");
            } else {
                obs::flush_sinks();
                std::process::exit(1);
            }
        }
        _ => cli.fail("expected one subcommand: gen|convert|info|verify|events-check"),
    }
    obs::flush_sinks();
}
