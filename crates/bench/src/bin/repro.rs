//! Reproduces the paper's tables and figures and prints their rows.
//!
//! Usage: `repro [figure ...] [--quick|--full] [--jobs N] [--out results.json]`
//! where `figure` is one of `fig03 fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//! fig18 fig19a fig19b fig20a fig20b table2 area` or `all` (default).
//!
//! All requested figures run as **one campaign** (`piccolo::campaign`): their grids are
//! flattened into a single global work queue, `--jobs N` shards it across `N` worker
//! threads (default: all cores, `--jobs 1` forces the sequential reference path), and
//! each distinct graph is built exactly once across the whole run. Output — both the
//! printed rows and the optional `results.json` — is bit-identical for every worker
//! count; CI diffs the two to enforce it. Scheduling stats (graphs built vs saved,
//! wall-clock) go to stderr as well, so they stay visible when stdout is redirected.

use piccolo::experiments::{default_specs, Scale, FIGURES};
use piccolo::report::results_json;
use piccolo::sweep::SweepRunner;

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("usage: repro [figure ...] [--quick|--full] [--jobs N] [--out results.json]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<String> = Vec::new();
    let mut quick = false;
    let mut jobs: usize = 0; // 0 = all cores
    let mut out_path: Option<String> = None;

    // Space-separated flag values only (`--jobs 4`), matching the bench harness.
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--jobs" => match it.next() {
                Some(v) => {
                    jobs = v
                        .parse()
                        .unwrap_or_else(|_| fail(&format!("invalid --jobs value '{v}'")))
                }
                None => fail("--jobs needs a value"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => fail("--out needs a path"),
            },
            other if other.starts_with("--") => fail(&format!("unknown flag '{other}'")),
            other => figures.push(other.to_string()),
        }
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::default_repro()
    };
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = FIGURES.iter().map(|s| s.to_string()).collect();
    }

    let runner = SweepRunner::new(jobs);
    let started = std::time::Instant::now();
    let (specs, unknown) = default_specs(&figures, scale);
    for f in &unknown {
        eprintln!("unknown figure '{f}'");
    }

    // One campaign over every requested figure: one global worker pool, each distinct
    // graph built exactly once across the whole run.
    let campaign = runner.run_campaign(&specs);
    for figure in &campaign.figures {
        println!("== {} ==", figure.title);
        for p in &figure.points {
            println!("{p}");
        }
        println!();
    }

    if let Some(path) = &out_path {
        let doc = results_json(scale, &campaign.figures);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    println!("== Summary ==");
    println!("{:<40} {:>12}", "figure", "rows");
    for f in &campaign.figures {
        println!("{:<40} {:>12}", f.title, f.points.len());
    }
    let stats = campaign.stats;
    let stats_line = format!(
        "campaign: {} figure(s), {} sim run(s), {} measure unit(s); \
         {} distinct graph(s) built once, {} build(s) saved vs per-figure scheduling; \
         {} worker(s), scale shift {}, {:.1} s",
        stats.figures,
        stats.sim_runs,
        stats.measure_units,
        stats.graphs_built,
        stats.builds_saved,
        runner.jobs(),
        scale.scale_shift,
        started.elapsed().as_secs_f64()
    );
    println!("{stats_line}");
    // CI's parity job redirects stdout to /dev/null; keep the dedup stats visible in
    // its logs so regressions in graph-build sharing are easy to spot.
    eprintln!("{stats_line}");
}
