//! Reproduces the paper's tables and figures and prints their rows.
//!
//! Usage: `repro [figure ...] [--quick|--full] [--jobs N] [--intra-jobs N]
//! [--out results.json] [--external NAME=PATH ...] [--snapshot-dir DIR]
//! [--shard I/N] [--resume JOURNAL] [--merge SHARD.json...]
//! [--events PATH] [--events-max-bytes N] [--metrics PATH] [--progress]
//! [--log-level LEVEL]` where `figure` is one of `fig03 fig09 fig10 fig11 fig12
//! fig13 fig14 fig15 fig16 fig17 fig18 fig19a fig19b fig20a fig20b table2 area`
//! or `all` (default when no `--external` is given). The common flags are the
//! shared driver surface ([`piccolo_bench::cli`]); only shard/merge/resume are
//! repro's own.
//!
//! All requested figures run as **one campaign** (`piccolo::campaign`): their grids are
//! flattened into a single global work queue, `--jobs N` shards it across `N` worker
//! threads (default: all cores, `--jobs 1` forces the sequential reference path), and
//! each distinct graph is built exactly once across the whole run. `--intra-jobs M`
//! additionally parallelizes the *interior* of each simulation across `M` threads
//! (`docs/parallelism.md`); the `--jobs` budget is split so `unit workers x M` stays
//! within it. Output — both the printed rows and the optional `results.json` — is
//! bit-identical for every worker count *and* every intra-thread count; CI diffs the
//! outputs to enforce it. Scheduling stats (graphs built vs saved,
//! wall-clock) go to stderr as well, so they stay visible when stdout is redirected.
//!
//! Beyond threads, a campaign also splits across **OS processes** and **invocations**
//! (`docs/results-schema.md` documents the file formats):
//!
//! * `--shard I/N` executes only the grid slots with `unit_index % N == I` and writes
//!   a `piccolo-results-shard/v1` document (default `results.shard-I-of-N.json`);
//!   every shard still builds exactly the graphs its own units need.
//! * `--merge A.json B.json ...` validates a complete shard set (matching plan hash
//!   for *this* invocation's figures and scale), merges the grid, evaluates derived
//!   rows once, and writes a `results.json` byte-identical to an unsharded run.
//! * `--resume JOURNAL` journals one checksummed line per completed unit and, on
//!   re-invocation, replays verified entries instead of re-running them — a killed
//!   campaign finishes in the time of its missing units, with identical bytes.
//! * `--shard I/N --resume JOURNAL` **composes**: journal entries carry global unit
//!   indices, so the shard projection replays its journaled slots and executes only
//!   the rest. A killed shard re-invocation, or several shards sharing one journal,
//!   merge to the same bytes either way — the same at-least-once substrate the
//!   `piccolo-serve` coordinator's work leases run on. Only `--merge` is exclusive
//!   (it recombines other runs' outputs instead of executing anything).
//!
//! `--external NAME=PATH` (repeatable) loads a real graph — plain edge list, SNAP TSV,
//! MatrixMarket or an existing `.pcsr` snapshot — through the `piccolo-io` snapshot
//! cache and appends the `external` figure (PR+BFS on both engines) over every loaded
//! graph to the campaign. With `--external` and no explicit figures, only the
//! `external` figure runs. Each load reports `snapshot cache hit|miss` (or `direct`
//! for `.pcsr` inputs) on stderr; the second run of the same file always hits.
//!
//! **Observability** (`docs/observability.md`) — all host-side, never in results:
//!
//! * `--events PATH` streams the run's span/event log as checksummed
//!   `piccolo-events/v1` JSONL (validate with `graphtool events-check PATH`) and, by
//!   default, writes the campaign's `metrics.json` beside the working directory.
//! * `--metrics PATH` writes the `piccolo-metrics/v1` aggregate registry explicitly.
//! * `--progress` renders a live one-line status (units done per figure, active
//!   builds, evictions, an ETA from the campaign's own unit-cost estimates).
//! * `--log-level quiet|error|warn|info|debug` filters the stderr log (`quiet`
//!   silences the drivers entirely; `debug` additionally prints span traffic).
//!
//! None of these flags change a single deterministic byte: `results.json`, shard
//! documents and journals are `cmp`-identical with observability on or off (pinned by
//! `tests/observability.rs` and the obs-smoke CI job).

#![forbid(unsafe_code)]

use piccolo::campaign::{merge_shards, CampaignStats, Shard};
use piccolo::experiments::Scale;
use piccolo::report::{results_json, FigureRows};
use piccolo::sweep::{effective_unit_jobs, SweepRunner};
use piccolo_bench::cli::{build_campaign, CliParser, CommonOpts, FlagSet};
use piccolo_obs as obs;
use std::path::{Path, PathBuf};

fn parser() -> CliParser {
    CliParser::new(
        "repro",
        format!(
            "repro [figure ...] {} \
             [--shard I/N] [--resume JOURNAL] [--merge SHARD.json...]",
            FlagSet::all().usage_fragment()
        ),
    )
}

/// Prints figure rows and the closing summary table.
fn print_figures(figures: &[FigureRows]) {
    for figure in figures {
        println!("== {} ==", figure.title);
        for p in &figure.points {
            println!("{p}");
        }
        println!();
    }
    println!("== Summary ==");
    println!("{:<40} {:>12}", "figure", "rows");
    for f in figures {
        println!("{:<40} {:>12}", f.title, f.points.len());
    }
}

/// Formats the campaign scheduling stats line printed to stdout *and* stderr (CI
/// redirects stdout to /dev/null; the stats must stay visible in its logs).
fn stats_line(stats: &CampaignStats, jobs: usize, scale: Scale, secs: f64) -> String {
    format!(
        "campaign: {} figure(s), {} sim run(s), {} measure unit(s); \
         {} distinct graph(s) built once, {} build(s) saved vs per-figure scheduling, \
         {} evicted when their last consumer finished; \
         phases: {} scatter / {} apply DRAM clock(s); \
         {} worker(s) x {} intra, scale shift {}, {secs:.1} s",
        stats.figures,
        stats.sim_runs,
        stats.measure_units,
        stats.graphs_built,
        stats.builds_saved,
        stats.graphs_evicted,
        stats.scatter_mem_clocks,
        stats.apply_mem_clocks,
        jobs,
        piccolo::intra_jobs(),
        scale.scale_shift,
    )
}

fn write_out(path: &str, doc: &str) {
    if let Err(e) = std::fs::write(path, doc) {
        obs::error(format!("repro: cannot write {path}: {e}"));
        obs::flush_sinks();
        std::process::exit(1);
    }
    obs::info(format!("wrote {path}"));
}

/// Writes the aggregated `piccolo-metrics/v1` registry, stamping the process's
/// peak-memory gauges first (host-side, like everything else in the document).
fn write_metrics(path: &Path) {
    if let Some(memory) = piccolo_bench::memory_stats() {
        obs::metrics::gauge_set("host/peak_rss_kb", memory.peak_rss_kb as f64);
        obs::metrics::gauge_set("host/vm_peak_kb", memory.vm_peak_kb as f64);
    }
    match obs::metrics::write_metrics_file(path) {
        Ok(()) => obs::info(format!("wrote {}", path.display())),
        Err(e) => obs::error(format!("repro: cannot write {}: {e}", path.display())),
    }
}

fn main() {
    // Attach the leveled stderr sink before anything can log (including argument
    // errors); --log-level re-applies the filter once parsed.
    obs::init_stderr(obs::LevelFilter::Info);
    obs::metrics::reset_metrics();
    let cli = parser();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CommonOpts::new(FlagSet::all());
    let mut shard: Option<Shard> = None;
    let mut merge_paths: Vec<String> = Vec::new();
    let mut resume_path: Option<PathBuf> = None;

    // Space-separated flag values only (`--jobs 4`); the shared surface is
    // piccolo_bench::cli, only the shard/merge/resume modes are repro's own.
    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if opts.accept(arg, &mut it, &cli) {
            continue;
        }
        match arg.as_str() {
            "--shard" => {
                let v = cli.value("--shard", &mut it);
                if shard.is_some() {
                    cli.fail("--shard given twice");
                }
                shard = Some(Shard::parse(v).unwrap_or_else(|e| cli.fail(&e)));
            }
            "--merge" => {
                // Greedy: every following token up to the next flag is a shard file.
                while let Some(v) = it.peek() {
                    if v.starts_with("--") {
                        break;
                    }
                    merge_paths.push(it.next().unwrap().clone());
                }
                if merge_paths.is_empty() {
                    cli.fail("--merge needs at least one shard file");
                }
            }
            "--resume" => resume_path = Some(PathBuf::from(cli.value("--resume", &mut it))),
            other if other.starts_with("--") => cli.unknown_flag(other),
            other => opts.figures.push(other.to_string()),
        }
    }

    // --merge recombines other runs' outputs; it cannot also execute a shard or
    // replay a journal. --shard and --resume compose: the journal's global unit
    // indices are shard-agnostic, so a shard projection simply skips replayed slots.
    if !merge_paths.is_empty() && (shard.is_some() || resume_path.is_some()) {
        cli.fail("--merge is exclusive with --shard and --resume");
    }

    // Observability sinks. Attached before any campaign work so the event log sees
    // the whole run; with --events and no explicit --metrics, the aggregate registry
    // still lands beside the run as metrics.json.
    opts.attach_sinks(&cli);

    // Two-level thread budget: --jobs is the total; each simulation gets --intra-jobs
    // threads for its own scatter/apply interior and the unit-level pool gets the
    // rest. Results are byte-identical for every split (docs/parallelism.md).
    piccolo::set_intra_jobs(opts.intra_jobs);
    let runner = SweepRunner::new(effective_unit_jobs(opts.jobs, piccolo::intra_jobs()));
    let started = std::time::Instant::now();
    let setup = build_campaign(&opts).unwrap_or_else(|e| cli.fail(&e));
    for f in &setup.unknown {
        obs::warn(format!("unknown figure '{f}'"));
    }
    let (scale, specs) = (setup.scale, setup.specs);
    let out_path = opts.out.clone();
    let metrics_path = opts.metrics.clone();

    // --merge: no campaign runs here — validate the shard set against this
    // invocation's plan (same figures, scale, code revision) and recombine.
    if !merge_paths.is_empty() {
        let docs: Vec<String> = merge_paths
            .iter()
            .map(|p| {
                std::fs::read_to_string(p)
                    .unwrap_or_else(|e| cli.fail(&format!("cannot read shard file {p}: {e}")))
            })
            .collect();
        let merged =
            merge_shards(scale, &specs, &docs).unwrap_or_else(|e| cli.fail(&format!("merge: {e}")));
        print_figures(&merged);
        let doc = results_json(scale, &merged);
        write_out(out_path.as_deref().unwrap_or("results.json"), &doc);
        let line = format!(
            "merged {} shard file(s) into {} figure(s), {:.1} s",
            merge_paths.len(),
            merged.len(),
            started.elapsed().as_secs_f64()
        );
        println!("{line}");
        obs::info(line);
        if let Some(path) = &metrics_path {
            write_metrics(path);
        }
        obs::flush_sinks();
        return;
    }

    // --shard: execute this process's projection of the grid and write the shard
    // document; derived rows need the whole grid, so figures are printed by --merge.
    // With --resume too, journaled slots replay instead of re-running and freshly
    // executed ones are appended — the same at-least-once substrate piccolo-serve
    // leases run on.
    if let Some(shard) = shard {
        let (run, resume_note) = match &resume_path {
            Some(journal) => {
                let resumed = runner
                    .run_campaign_shard_resumed(scale, &specs, shard, journal)
                    .unwrap_or_else(|e| {
                        cli.fail(&format!("cannot use journal {}: {e}", journal.display()))
                    });
                let note = format!(
                    "resume: {} unit(s) replayed from {}, {} executed this run, \
                     {} journaled graph build(s) skipped{}",
                    resumed.replayed,
                    journal.display(),
                    resumed.executed,
                    resumed.builds_skipped,
                    if resumed.corrupt + resumed.mismatched > 0 {
                        format!(
                            " ({} corrupt line(s) and {} foreign entr(ies) ignored)",
                            resumed.corrupt, resumed.mismatched
                        )
                    } else {
                        String::new()
                    }
                );
                (resumed.run, Some(note))
            }
            None => (runner.run_campaign_shard(scale, &specs, shard), None),
        };
        let default_name = format!("results.shard-{}-of-{}.json", shard.index, shard.count);
        write_out(out_path.as_deref().unwrap_or(&default_name), &run.to_json());
        let line = format!(
            "shard {shard}: {} of the campaign's grid unit(s) executed; {}",
            run.num_units(),
            stats_line(
                &run.stats,
                runner.jobs(),
                scale,
                started.elapsed().as_secs_f64()
            )
        );
        println!("{line}");
        obs::info(line);
        if let Some(note) = resume_note {
            println!("{note}");
            obs::info(note);
        }
        if let Some(path) = &metrics_path {
            write_metrics(path);
        }
        obs::flush_sinks();
        return;
    }

    // One campaign over every requested figure: one global worker pool, each distinct
    // graph built exactly once across the whole run. With --resume, completed units
    // are replayed from / appended to the journal.
    let (campaign, resume_note) = match &resume_path {
        Some(journal) => {
            let resumed = runner
                .run_campaign_resumed(scale, &specs, journal)
                .unwrap_or_else(|e| {
                    cli.fail(&format!("cannot use journal {}: {e}", journal.display()))
                });
            let note = format!(
                "resume: {} unit(s) replayed from {}, {} executed this run, \
                 {} journaled graph build(s) skipped{}",
                resumed.replayed,
                journal.display(),
                resumed.executed,
                resumed.builds_skipped,
                if resumed.corrupt + resumed.mismatched > 0 {
                    format!(
                        " ({} corrupt line(s) and {} foreign entr(ies) ignored)",
                        resumed.corrupt, resumed.mismatched
                    )
                } else {
                    String::new()
                }
            );
            (resumed.run, Some(note))
        }
        None => (runner.run_campaign(&specs), None),
    };
    print_figures(&campaign.figures);

    if let Some(path) = &out_path {
        let doc = results_json(scale, &campaign.figures);
        write_out(path, &doc);
    }

    let line = stats_line(
        &campaign.stats,
        runner.jobs(),
        scale,
        started.elapsed().as_secs_f64(),
    );
    println!("{line}");
    // CI's parity jobs redirect stdout to /dev/null; keep the dedup and resume stats
    // visible in their logs so regressions are easy to spot.
    obs::info(line);
    if let Some(note) = resume_note {
        println!("{note}");
        obs::info(note);
    }
    if let Some(path) = &metrics_path {
        write_metrics(path);
    }
    obs::flush_sinks();
}
