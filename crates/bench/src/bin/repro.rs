//! Reproduces the paper's tables and figures and prints their rows.
//!
//! Usage: `repro [figure ...] [--quick|--full]`
//! where `figure` is one of `fig03 fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//! fig18 fig19a fig19b fig20a fig20b table2 area` or `all` (default).

use piccolo::experiments::{self, Point, Scale};
use piccolo_algo::Algorithm;
use piccolo_graph::Dataset;

/// Prints one figure's rows and records it for the closing summary table.
fn print(summary: &mut Vec<(String, usize)>, figure: &str, points: &[Point]) {
    println!("== {figure} ==");
    for p in points {
        println!("{p}");
    }
    println!();
    summary.push((figure.to_string(), points.len()));
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let scale = if quick {
        Scale::quick()
    } else {
        Scale::default_repro()
    };
    let mut figures: Vec<String> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .cloned()
        .collect();
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = [
            "table2", "fig03", "fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
            "fig16", "fig17", "fig18", "fig19a", "fig19b", "fig20a", "fig20b", "area",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    let mut summary: Vec<(String, usize)> = Vec::new();
    let started = std::time::Instant::now();
    let datasets = Dataset::REAL_WORLD;
    let algorithms = Algorithm::ALL;
    let one_alg = [Algorithm::PageRank, Algorithm::Bfs];
    for f in figures {
        match f.as_str() {
            "table2" => print(
                &mut summary,
                "Table II (datasets)",
                &experiments::table2(scale),
            ),
            "fig03" => print(
                &mut summary,
                "Fig. 3 (motivation)",
                &experiments::fig03(
                    scale,
                    &[Dataset::Twitter, Dataset::Sinaweibo, Dataset::Friendster],
                ),
            ),
            "fig09" => print(
                &mut summary,
                "Fig. 9 (FIM microbenchmark)",
                &experiments::fig09(),
            ),
            "fig10" => print(
                &mut summary,
                "Fig. 10 (overall speedup)",
                &experiments::fig10(scale, &datasets, &algorithms),
            ),
            "fig11" => print(
                &mut summary,
                "Fig. 11 (cache designs)",
                &experiments::fig11(scale, &[Dataset::Sinaweibo, Dataset::Friendster], &one_alg),
            ),
            "fig12" => print(
                &mut summary,
                "Fig. 12 (memory accesses)",
                &experiments::fig12(scale, &datasets, &algorithms),
            ),
            "fig13" => print(
                &mut summary,
                "Fig. 13 (bandwidth)",
                &experiments::fig13(scale, &[Dataset::Sinaweibo], &algorithms),
            ),
            "fig14" => print(
                &mut summary,
                "Fig. 14 (energy)",
                &experiments::fig14(scale, &[Dataset::Sinaweibo, Dataset::Friendster], &one_alg),
            ),
            "fig15" => print(
                &mut summary,
                "Fig. 15 (memory types)",
                &experiments::fig15(scale, Dataset::Sinaweibo, &algorithms),
            ),
            "fig16" => print(
                &mut summary,
                "Fig. 16 (channels/ranks)",
                &experiments::fig16(scale, Dataset::Sinaweibo, &algorithms),
            ),
            "fig17" => print(
                &mut summary,
                "Fig. 17 (tile size)",
                &experiments::fig17(scale, Dataset::Sinaweibo, &algorithms),
            ),
            "fig18" => print(
                &mut summary,
                "Fig. 18 (synthetic graphs)",
                &experiments::fig18(scale),
            ),
            "fig19a" => print(
                &mut summary,
                "Fig. 19a (edge-centric)",
                &experiments::fig19a(scale, &datasets),
            ),
            "fig19b" => print(
                &mut summary,
                "Fig. 19b (OLAP)",
                &experiments::fig19b(200_000),
            ),
            "fig20a" => print(
                &mut summary,
                "Fig. 20a (enhanced designs)",
                &experiments::fig20a(scale, Dataset::Sinaweibo, &one_alg),
            ),
            "fig20b" => print(
                &mut summary,
                "Fig. 20b (prefetch disabled)",
                &experiments::fig20b(scale, &datasets),
            ),
            "area" => {
                let a = piccolo::area_report();
                println!("== Area (Section VII-F) ==");
                println!(
                    "baseline accelerator     {:>8.2} mm^2",
                    a.baseline_accelerator_mm2
                );
                println!(
                    "piccolo accelerator      {:>8.2} mm^2 (+{:.1} %)",
                    a.piccolo_accelerator_mm2,
                    100.0 * a.onchip_overhead_fraction
                );
                println!(
                    "DRAM die overhead        {:>8.2} %",
                    100.0 * a.dram_overhead_fraction
                );
                println!(
                    "piccolo-cache tag ovhd   {:>8.2} %",
                    100.0 * a.piccolo_tag_overhead
                );
                println!(
                    "8B-line cache tag ovhd   {:>8.2} %",
                    100.0 * a.line8_tag_overhead
                );
                println!();
                summary.push(("Area (Section VII-F)".to_string(), 5));
            }
            other => eprintln!("unknown figure '{other}'"),
        }
    }
    println!("== Summary ==");
    println!("{:<40} {:>12}", "figure", "rows");
    for (figure, rows) in &summary {
        println!("{figure:<40} {rows:>12}");
    }
    println!(
        "{} figure(s)/table(s) reproduced at scale shift {} in {:.1} s",
        summary.len(),
        scale.scale_shift,
        started.elapsed().as_secs_f64()
    );
}
