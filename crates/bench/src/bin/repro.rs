//! Reproduces the paper's tables and figures and prints their rows.
//!
//! Usage: `repro [figure ...] [--quick|--full] [--jobs N] [--out results.json]
//! [--external NAME=PATH ...] [--snapshot-dir DIR]`
//! where `figure` is one of `fig03 fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//! fig18 fig19a fig19b fig20a fig20b table2 area` or `all` (default when no
//! `--external` is given).
//!
//! All requested figures run as **one campaign** (`piccolo::campaign`): their grids are
//! flattened into a single global work queue, `--jobs N` shards it across `N` worker
//! threads (default: all cores, `--jobs 1` forces the sequential reference path), and
//! each distinct graph is built exactly once across the whole run. Output — both the
//! printed rows and the optional `results.json` — is bit-identical for every worker
//! count; CI diffs the two to enforce it. Scheduling stats (graphs built vs saved,
//! wall-clock) go to stderr as well, so they stay visible when stdout is redirected.
//!
//! `--external NAME=PATH` (repeatable) loads a real graph — plain edge list, SNAP TSV,
//! MatrixMarket or an existing `.pcsr` snapshot — through the `piccolo-io` snapshot
//! cache and appends the `external` figure (PR+BFS on both engines) over every loaded
//! graph to the campaign. With `--external` and no explicit figures, only the
//! `external` figure runs. Each load reports `snapshot cache hit|miss` (or `direct`
//! for `.pcsr` inputs) on stderr; the second run of the same file always hits.

use piccolo::experiments::{default_specs, external_spec, Scale, FIGURES};
use piccolo::report::results_json;
use piccolo::sweep::SweepRunner;
use piccolo_graph::Dataset;
use std::path::{Path, PathBuf};

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!(
        "usage: repro [figure ...] [--quick|--full] [--jobs N] [--out results.json] \
         [--external NAME=PATH ...] [--snapshot-dir DIR]"
    );
    std::process::exit(2);
}

/// Loads every `--external NAME=PATH` through the snapshot cache, registers it, and
/// returns the dataset handles in CLI order (so ids and output are deterministic).
fn load_externals(externals: &[(String, String)], snapshot_dir: &Path) -> Vec<Dataset> {
    let mut datasets = Vec::new();
    for (name, path) in externals {
        let loaded = piccolo_io::load_graph_with(Path::new(path), None, snapshot_dir)
            .unwrap_or_else(|e| fail(&format!("cannot load external graph '{name}': {e}")));
        if loaded.graph.num_vertices() == 0 {
            fail(&format!("external graph '{name}' ({path}) is empty"));
        }
        eprintln!(
            "external '{name}': {path} ({} vertices, {} edges) snapshot cache {}",
            loaded.graph.num_vertices(),
            loaded.graph.num_edges(),
            loaded.status
        );
        datasets.push(piccolo_graph::external::register(name, loaded.graph));
    }
    datasets
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<String> = Vec::new();
    let mut quick = false;
    let mut jobs: usize = 0; // 0 = all cores
    let mut out_path: Option<String> = None;
    let mut externals: Vec<(String, String)> = Vec::new();
    let mut snapshot_dir: Option<PathBuf> = None;

    // Space-separated flag values only (`--jobs 4`), matching the bench harness.
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--jobs" => match it.next() {
                Some(v) => {
                    jobs = v
                        .parse()
                        .unwrap_or_else(|_| fail(&format!("invalid --jobs value '{v}'")))
                }
                None => fail("--jobs needs a value"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => fail("--out needs a path"),
            },
            "--external" => match it.next().map(|v| v.split_once('=')) {
                Some(Some((name, path))) if !name.is_empty() && !path.is_empty() => {
                    if externals.iter().any(|(n, _)| n == name) {
                        fail(&format!("duplicate external name '{name}'"));
                    }
                    externals.push((name.to_string(), path.to_string()));
                }
                Some(_) => fail("--external expects NAME=PATH"),
                None => fail("--external needs a NAME=PATH value"),
            },
            "--snapshot-dir" => match it.next() {
                Some(v) => snapshot_dir = Some(PathBuf::from(v)),
                None => fail("--snapshot-dir needs a path"),
            },
            other if other.starts_with("--") => fail(&format!("unknown flag '{other}'")),
            other => figures.push(other.to_string()),
        }
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::default_repro()
    };
    // With no figure arguments the default is every figure — unless externals were
    // given, in which case the default shrinks to just the external figure.
    if figures.iter().any(|f| f == "all") || (figures.is_empty() && externals.is_empty()) {
        figures = FIGURES.iter().map(|s| s.to_string()).collect();
    }

    let snapshot_dir = snapshot_dir.unwrap_or_else(piccolo_io::default_snapshot_dir);
    let external_datasets = load_externals(&externals, &snapshot_dir);

    let runner = SweepRunner::new(jobs);
    let started = std::time::Instant::now();
    let (mut specs, unknown) = default_specs(&figures, scale);
    for f in &unknown {
        eprintln!("unknown figure '{f}'");
    }
    if !external_datasets.is_empty() {
        specs.push(external_spec(scale, &external_datasets));
    }

    // One campaign over every requested figure: one global worker pool, each distinct
    // graph built exactly once across the whole run.
    let campaign = runner.run_campaign(&specs);
    for figure in &campaign.figures {
        println!("== {} ==", figure.title);
        for p in &figure.points {
            println!("{p}");
        }
        println!();
    }

    if let Some(path) = &out_path {
        let doc = results_json(scale, &campaign.figures);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    println!("== Summary ==");
    println!("{:<40} {:>12}", "figure", "rows");
    for f in &campaign.figures {
        println!("{:<40} {:>12}", f.title, f.points.len());
    }
    let stats = campaign.stats;
    let stats_line = format!(
        "campaign: {} figure(s), {} sim run(s), {} measure unit(s); \
         {} distinct graph(s) built once, {} build(s) saved vs per-figure scheduling, \
         {} evicted when their last consumer finished; \
         {} worker(s), scale shift {}, {:.1} s",
        stats.figures,
        stats.sim_runs,
        stats.measure_units,
        stats.graphs_built,
        stats.builds_saved,
        stats.graphs_evicted,
        runner.jobs(),
        scale.scale_shift,
        started.elapsed().as_secs_f64()
    );
    println!("{stats_line}");
    // CI's parity job redirects stdout to /dev/null; keep the dedup stats visible in
    // its logs so regressions in graph-build sharing are easy to spot.
    eprintln!("{stats_line}");
}
