//! Reproduces the paper's tables and figures and prints their rows.
//!
//! Usage: `repro [figure ...] [--quick|--full] [--jobs N] [--out results.json]`
//! where `figure` is one of `fig03 fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16 fig17
//! fig18 fig19a fig19b fig20a fig20b table2 area` or `all` (default).
//!
//! Every figure is a grid of independent simulation runs; `--jobs N` shards them across
//! `N` worker threads (default: all cores, `--jobs 1` forces the sequential reference
//! path). Output — both the printed rows and the optional `results.json` — is
//! bit-identical for every worker count; CI diffs the two to enforce it.

use piccolo::experiments::{Scale, FIGURES};
use piccolo::report::{results_json, FigureRows};
use piccolo::sweep::SweepRunner;

fn fail(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    eprintln!("usage: repro [figure ...] [--quick|--full] [--jobs N] [--out results.json]");
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figures: Vec<String> = Vec::new();
    let mut quick = false;
    let mut jobs: usize = 0; // 0 = all cores
    let mut out_path: Option<String> = None;

    // Space-separated flag values only (`--jobs 4`), matching the bench harness.
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--full" => quick = false,
            "--jobs" => match it.next() {
                Some(v) => {
                    jobs = v
                        .parse()
                        .unwrap_or_else(|_| fail(&format!("invalid --jobs value '{v}'")))
                }
                None => fail("--jobs needs a value"),
            },
            "--out" => match it.next() {
                Some(v) => out_path = Some(v.clone()),
                None => fail("--out needs a path"),
            },
            other if other.starts_with("--") => fail(&format!("unknown flag '{other}'")),
            other => figures.push(other.to_string()),
        }
    }

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::default_repro()
    };
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = FIGURES.iter().map(|s| s.to_string()).collect();
    }

    let runner = SweepRunner::new(jobs);
    let started = std::time::Instant::now();
    let mut reproduced: Vec<FigureRows> = Vec::new();
    for f in &figures {
        let Some(spec) = piccolo::experiments::default_spec(f, scale) else {
            eprintln!("unknown figure '{f}'");
            continue;
        };
        let points = runner.run(&spec);
        println!("== {} ==", spec.title());
        for p in &points {
            println!("{p}");
        }
        println!();
        reproduced.push(FigureRows {
            name: spec.name().to_string(),
            title: spec.title().to_string(),
            points,
        });
    }

    if let Some(path) = &out_path {
        let doc = results_json(scale, &reproduced);
        if let Err(e) = std::fs::write(path, doc) {
            eprintln!("repro: cannot write {path}: {e}");
            std::process::exit(1);
        }
        eprintln!("wrote {path}");
    }

    println!("== Summary ==");
    println!("{:<40} {:>12}", "figure", "rows");
    for f in &reproduced {
        println!("{:<40} {:>12}", f.title, f.points.len());
    }
    println!(
        "{} figure(s)/table(s) reproduced at scale shift {} with {} worker(s) in {:.1} s",
        reproduced.len(),
        scale.scale_shift,
        runner.jobs(),
        started.elapsed().as_secs_f64()
    );
}
