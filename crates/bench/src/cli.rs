//! One flag surface for every driver: `repro`, the bench harness, `graphtool`,
//! and the `piccolo-serve` / `piccolo-worker` entry points all parse the shared
//! options (`--jobs`, `--intra-jobs`, `--external`, `--snapshot-dir`,
//! `--events`, `--events-max-bytes`, `--metrics`, `--log-level`, `--out`,
//! `--quick`/`--full`, `--progress`) through [`CommonOpts`], so a flag spelled
//! the same way means the same thing everywhere and unknown-flag / usage errors
//! render identically across binaries.
//!
//! Each driver enables only the subset it supports ([`FlagSet`]); a disabled
//! common flag falls through to the driver's unknown-flag error exactly like a
//! misspelled one. The campaign-shaping subset (figures, scale, intra-jobs,
//! externals, snapshot dir) round-trips through compact JSON
//! ([`CommonOpts::to_wire_json`] / [`CommonOpts::from_wire_json`]), which is how
//! a `piccolo-worker` inherits the coordinator's options over the wire instead
//! of re-specifying them.

use piccolo::experiments::{default_specs, external_spec, Scale, FIGURES};
use piccolo::json::{parse, Json};
use piccolo::sweep::ExperimentSpec;
use piccolo_graph::Dataset;
use piccolo_obs as obs;
use std::iter::Peekable;
use std::path::PathBuf;
use std::slice::Iter;

/// Uniform error/usage reporting for one binary: every parse failure goes
/// through [`CliParser::fail`], so all drivers exit the same way (message +
/// usage on the leveled stderr sink, exit code 2).
#[derive(Debug)]
pub struct CliParser {
    prog: &'static str,
    usage: String,
}

impl CliParser {
    /// A parser for binary `prog` whose usage line is `usage`.
    #[must_use]
    pub fn new(prog: &'static str, usage: impl Into<String>) -> Self {
        Self {
            prog,
            usage: usage.into(),
        }
    }

    /// Reports `msg` plus the usage line and exits with status 2 — the uniform
    /// argument-error path of every driver.
    pub fn fail(&self, msg: &str) -> ! {
        obs::error(format!("{}: {msg}", self.prog));
        obs::error(format!("usage: {}", self.usage));
        obs::flush_sinks();
        std::process::exit(2);
    }

    /// The uniform unknown-flag error.
    pub fn unknown_flag(&self, flag: &str) -> ! {
        self.fail(&format!("unknown flag '{flag}'"));
    }

    /// Fetches a flag's space-separated value or fails uniformly.
    pub fn value<'a>(&self, flag: &str, it: &mut Peekable<Iter<'a, String>>) -> &'a str {
        match it.next() {
            Some(v) => v,
            None => self.fail(&format!("{flag} needs a value")),
        }
    }
}

/// Which common flags a driver accepts. A flag outside the set falls through
/// [`CommonOpts::accept`] to the driver's unknown-flag error.
#[derive(Debug, Clone, Copy, Default)]
#[allow(clippy::struct_excessive_bools)] // a flag mask is exactly a set of bools
pub struct FlagSet {
    /// `--quick` / `--full`.
    pub scale: bool,
    /// `--jobs N`.
    pub jobs: bool,
    /// `--intra-jobs N`.
    pub intra_jobs: bool,
    /// `--out PATH`.
    pub out: bool,
    /// `--external NAME=PATH` (repeatable).
    pub external: bool,
    /// `--snapshot-dir DIR`.
    pub snapshot_dir: bool,
    /// `--events PATH` and `--events-max-bytes N`.
    pub events: bool,
    /// `--metrics PATH`.
    pub metrics: bool,
    /// `--progress`.
    pub progress: bool,
    /// `--log-level LEVEL` (applied to the stderr sink as soon as parsed).
    pub log_level: bool,
}

impl FlagSet {
    /// Every common flag — the `repro` driver's surface.
    #[must_use]
    pub fn all() -> Self {
        Self {
            scale: true,
            jobs: true,
            intra_jobs: true,
            out: true,
            external: true,
            snapshot_dir: true,
            events: true,
            metrics: true,
            progress: true,
            log_level: true,
        }
    }

    /// The usage-line fragment for the enabled flags, in canonical order.
    #[must_use]
    pub fn usage_fragment(&self) -> String {
        let mut parts: Vec<&str> = Vec::new();
        if self.scale {
            parts.push("[--quick|--full]");
        }
        if self.jobs {
            parts.push("[--jobs N]");
        }
        if self.intra_jobs {
            parts.push("[--intra-jobs N]");
        }
        if self.out {
            parts.push("[--out PATH]");
        }
        if self.external {
            parts.push("[--external NAME=PATH ...]");
        }
        if self.snapshot_dir {
            parts.push("[--snapshot-dir DIR]");
        }
        if self.events {
            parts.push("[--events PATH] [--events-max-bytes N]");
        }
        if self.metrics {
            parts.push("[--metrics PATH]");
        }
        if self.progress {
            parts.push("[--progress]");
        }
        if self.log_level {
            parts.push("[--log-level LEVEL]");
        }
        parts.join(" ")
    }
}

/// The options shared by every driver. Construct with [`CommonOpts::new`],
/// feed each argument through [`CommonOpts::accept`] inside the driver's parse
/// loop, then use the fields (or [`build_campaign`] / `attach_sinks`).
#[derive(Debug, Clone)]
pub struct CommonOpts {
    enabled: FlagSet,
    /// Requested figure names (positional; the driver pushes them).
    pub figures: Vec<String>,
    /// `--quick` (vs the `--full` default): the CI-sized scale.
    pub quick: bool,
    /// `--jobs N` worker threads; 0 = all cores.
    pub jobs: usize,
    /// `--intra-jobs M` threads inside each simulation; 0 = all cores.
    pub intra_jobs: usize,
    /// `--out PATH` output override.
    pub out: Option<String>,
    /// `--external NAME=PATH` pairs, in order, names deduplicated.
    pub externals: Vec<(String, String)>,
    /// `--snapshot-dir DIR` override for the `.pcsr` cache.
    pub snapshot_dir: Option<PathBuf>,
    /// `--events PATH`: the `piccolo-events/v1` JSONL stream.
    pub events: Option<PathBuf>,
    /// `--events-max-bytes N`: rotation cap for the event stream.
    pub events_max_bytes: Option<u64>,
    /// `--metrics PATH`: the `piccolo-metrics/v1` aggregate registry.
    pub metrics: Option<PathBuf>,
    /// `--progress`: live one-line status renderer.
    pub progress: bool,
}

impl CommonOpts {
    /// Fresh defaults with the given enabled set.
    #[must_use]
    pub fn new(enabled: FlagSet) -> Self {
        Self {
            enabled,
            figures: Vec::new(),
            quick: false,
            jobs: 0,
            intra_jobs: 1,
            out: None,
            externals: Vec::new(),
            snapshot_dir: None,
            events: None,
            events_max_bytes: None,
            metrics: None,
            progress: false,
        }
    }

    /// Tries to consume `arg` (plus its value, if any) as a common flag.
    /// Returns `false` when `arg` is not an **enabled** common flag, leaving
    /// the driver to handle its own flags and positionals — or to report the
    /// uniform unknown-flag error.
    pub fn accept(
        &mut self,
        arg: &str,
        it: &mut Peekable<Iter<'_, String>>,
        cli: &CliParser,
    ) -> bool {
        match arg {
            "--quick" if self.enabled.scale => self.quick = true,
            "--full" if self.enabled.scale => self.quick = false,
            "--jobs" if self.enabled.jobs => {
                let v = cli.value("--jobs", it);
                self.jobs = v
                    .parse()
                    .unwrap_or_else(|_| cli.fail(&format!("invalid --jobs value '{v}'")));
            }
            "--intra-jobs" if self.enabled.intra_jobs => {
                let v = cli.value("--intra-jobs", it);
                self.intra_jobs = v
                    .parse()
                    .unwrap_or_else(|_| cli.fail(&format!("invalid --intra-jobs value '{v}'")));
            }
            "--out" if self.enabled.out => self.out = Some(cli.value("--out", it).to_string()),
            "--external" if self.enabled.external => {
                let v = cli.value("--external", it);
                match v.split_once('=') {
                    Some((name, path)) if !name.is_empty() && !path.is_empty() => {
                        if self.externals.iter().any(|(n, _)| n == name) {
                            cli.fail(&format!("duplicate external name '{name}'"));
                        }
                        self.externals.push((name.to_string(), path.to_string()));
                    }
                    _ => cli.fail("--external expects NAME=PATH"),
                }
            }
            "--snapshot-dir" if self.enabled.snapshot_dir => {
                self.snapshot_dir = Some(PathBuf::from(cli.value("--snapshot-dir", it)));
            }
            "--events" if self.enabled.events => {
                self.events = Some(PathBuf::from(cli.value("--events", it)));
            }
            "--events-max-bytes" if self.enabled.events => {
                let v = cli.value("--events-max-bytes", it);
                let bytes = v.parse().unwrap_or_else(|_| {
                    cli.fail(&format!("invalid --events-max-bytes value '{v}'"))
                });
                if bytes == 0 {
                    cli.fail("--events-max-bytes must be positive");
                }
                self.events_max_bytes = Some(bytes);
            }
            "--metrics" if self.enabled.metrics => {
                self.metrics = Some(PathBuf::from(cli.value("--metrics", it)));
            }
            "--progress" if self.enabled.progress => self.progress = true,
            "--log-level" if self.enabled.log_level => {
                let v = cli.value("--log-level", it);
                match obs::LevelFilter::parse(v) {
                    Some(filter) => obs::init_stderr(filter),
                    None => cli.fail(&format!(
                        "invalid --log-level '{v}' (quiet|error|warn|info|debug)"
                    )),
                }
            }
            _ => return false,
        }
        true
    }

    /// The scale selected by `--quick`/`--full`.
    #[must_use]
    pub fn scale(&self) -> Scale {
        if self.quick {
            Scale::quick()
        } else {
            Scale::default_repro()
        }
    }

    /// Attaches the observability sinks these options request: the (optionally
    /// rotation-capped) events file and the progress renderer. With `--events`
    /// and no explicit `--metrics`, the aggregate registry defaults to
    /// `metrics.json` beside the run — every driver behaves the same way.
    pub fn attach_sinks(&mut self, cli: &CliParser) {
        if let Some(path) = &self.events {
            if let Err(e) = obs::add_events_file_with_limit(path, self.events_max_bytes) {
                cli.fail(&format!(
                    "cannot create events file {}: {e}",
                    path.display()
                ));
            }
            if self.metrics.is_none() {
                self.metrics = Some(PathBuf::from("metrics.json"));
            }
        }
        if self.progress {
            obs::add_progress();
        }
    }

    /// Serializes the campaign-shaping subset (figures, scale, intra-jobs,
    /// externals, snapshot dir) as compact JSON — what a coordinator sends so
    /// its workers inherit the options that define the plan. Paths travel
    /// verbatim: external graphs and snapshot dirs must resolve on the worker.
    #[must_use]
    pub fn to_wire_json(&self) -> String {
        Json::obj([
            (
                "figures",
                Json::Arr(self.figures.iter().map(Json::str).collect()),
            ),
            ("quick", Json::Bool(self.quick)),
            ("intra_jobs", Json::Num(self.intra_jobs as f64)),
            (
                "externals",
                Json::Arr(
                    self.externals
                        .iter()
                        .map(|(name, path)| Json::str(format!("{name}={path}")))
                        .collect(),
                ),
            ),
            (
                "snapshot_dir",
                self.snapshot_dir
                    .as_ref()
                    .map_or(Json::Null, |d| Json::str(d.display().to_string())),
            ),
        ])
        .to_string()
    }

    /// Rebuilds the campaign-shaping subset from [`CommonOpts::to_wire_json`]
    /// bytes. Fields outside the wire subset keep their defaults; the receiver
    /// overlays its own local flags (jobs, log level, sinks) afterwards.
    ///
    /// # Errors
    ///
    /// Describes the first malformed field.
    pub fn from_wire_json(wire: &str) -> Result<Self, String> {
        let doc = parse(wire).map_err(|e| format!("options: unparseable: {e}"))?;
        let mut opts = Self::new(FlagSet::all());
        let figures = doc
            .get("figures")
            .and_then(Json::as_array)
            .ok_or("options: missing figures list")?;
        for f in figures {
            opts.figures.push(
                f.as_str()
                    .ok_or("options: non-string figure name")?
                    .to_string(),
            );
        }
        opts.quick = match doc.get("quick") {
            Some(Json::Bool(b)) => *b,
            _ => return Err("options: missing quick".to_string()),
        };
        let intra = doc
            .get("intra_jobs")
            .and_then(Json::as_f64)
            .filter(|n| n.fract() == 0.0 && *n >= 0.0)
            .ok_or("options: bad intra_jobs")?;
        opts.intra_jobs = intra as usize;
        let externals = doc
            .get("externals")
            .and_then(Json::as_array)
            .ok_or("options: missing externals list")?;
        for e in externals {
            let pair = e.as_str().ok_or("options: non-string external")?;
            let (name, path) = pair
                .split_once('=')
                .ok_or_else(|| format!("options: external '{pair}' is not NAME=PATH"))?;
            opts.externals.push((name.to_string(), path.to_string()));
        }
        match doc.get("snapshot_dir") {
            None | Some(Json::Null) => {}
            Some(d) => {
                opts.snapshot_dir = Some(PathBuf::from(
                    d.as_str().ok_or("options: non-string snapshot_dir")?,
                ));
            }
        }
        Ok(opts)
    }
}

/// Everything needed to run (or plan) the campaign these options describe.
#[derive(Debug)]
pub struct CampaignSetup {
    /// The selected scale.
    pub scale: Scale,
    /// The spec list, externals appended last — the plan-hash identity.
    pub specs: Vec<ExperimentSpec>,
    /// Figure names that matched nothing (the driver warns about them).
    pub unknown: Vec<String>,
    /// The loaded external datasets (kept alive for the campaign's duration).
    pub datasets: Vec<Dataset>,
}

/// Resolves options into a concrete campaign: applies the default-figure rule
/// (everything, unless only externals were requested), loads external graphs
/// through the snapshot cache, and builds the spec list. `repro`, the
/// coordinator, and every worker call this with the same wire-carried options,
/// which is what makes their plan hashes agree.
///
/// # Errors
///
/// Reports external-graph load failures verbatim.
pub fn build_campaign(opts: &CommonOpts) -> Result<CampaignSetup, String> {
    let scale = opts.scale();
    let mut figures = opts.figures.clone();
    if figures.iter().any(|f| f == "all") || (figures.is_empty() && opts.externals.is_empty()) {
        figures = FIGURES.iter().map(|s| (*s).to_string()).collect();
    }
    let snapshot_dir = opts
        .snapshot_dir
        .clone()
        .unwrap_or_else(piccolo_io::default_snapshot_dir);
    let external_paths: Vec<(String, PathBuf)> = opts
        .externals
        .iter()
        .map(|(name, path)| (name.clone(), PathBuf::from(path)))
        .collect();
    let datasets = crate::load_externals(&external_paths, &snapshot_dir)?;
    let (mut specs, unknown) = default_specs(&figures, scale);
    if !datasets.is_empty() {
        specs.push(external_spec(scale, &datasets));
    }
    Ok(CampaignSetup {
        scale,
        specs,
        unknown,
        datasets,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    fn parse_all(args: &[&str]) -> CommonOpts {
        let cli = CliParser::new("test", "test");
        let args = strings(args);
        let mut opts = CommonOpts::new(FlagSet::all());
        let mut it = args.iter().peekable();
        while let Some(arg) = it.next() {
            assert!(
                opts.accept(arg, &mut it, &cli),
                "flag {arg} not accepted by the full set"
            );
        }
        opts
    }

    #[test]
    fn common_flags_parse_into_their_fields() {
        let opts = parse_all(&[
            "--quick",
            "--jobs",
            "4",
            "--intra-jobs",
            "2",
            "--out",
            "r.json",
            "--external",
            "web=graph.txt",
            "--snapshot-dir",
            "snaps",
            "--events",
            "ev.jsonl",
            "--events-max-bytes",
            "4096",
            "--metrics",
            "m.json",
        ]);
        assert!(opts.quick);
        assert_eq!((opts.jobs, opts.intra_jobs), (4, 2));
        assert_eq!(opts.out.as_deref(), Some("r.json"));
        assert_eq!(opts.externals, vec![("web".into(), "graph.txt".into())]);
        assert_eq!(opts.snapshot_dir.as_deref(), Some(Path::new("snaps")));
        assert_eq!(opts.events.as_deref(), Some(Path::new("ev.jsonl")));
        assert_eq!(opts.events_max_bytes, Some(4096));
        assert_eq!(opts.metrics.as_deref(), Some(Path::new("m.json")));
    }

    use std::path::Path;

    #[test]
    fn disabled_flags_fall_through_to_the_driver() {
        let cli = CliParser::new("test", "test");
        let args = strings(&["--jobs"]);
        let mut opts = CommonOpts::new(FlagSet {
            log_level: true,
            ..FlagSet::default()
        });
        let mut it = args.iter().peekable();
        let arg = it.next().unwrap();
        assert!(!opts.accept(arg, &mut it, &cli));
        assert_eq!(it.next(), None); // the value was not consumed either
    }

    #[test]
    fn wire_roundtrip_preserves_the_campaign_shaping_subset() {
        let mut opts = CommonOpts::new(FlagSet::all());
        opts.figures = strings(&["fig10", "table2"]);
        opts.quick = true;
        opts.intra_jobs = 3;
        opts.externals = vec![("web".into(), "a/b.txt".into())];
        opts.snapshot_dir = Some(PathBuf::from("snaps"));
        let wire = opts.to_wire_json();
        let back = CommonOpts::from_wire_json(&wire).unwrap();
        assert_eq!(back.figures, opts.figures);
        assert_eq!(back.quick, opts.quick);
        assert_eq!(back.intra_jobs, opts.intra_jobs);
        assert_eq!(back.externals, opts.externals);
        assert_eq!(back.snapshot_dir, opts.snapshot_dir);
        // Local-only fields reset to defaults on the receiving side.
        assert_eq!(back.jobs, 0);
        assert!(back.events.is_none());
    }

    #[test]
    fn wire_json_rejects_malformed_documents() {
        assert!(CommonOpts::from_wire_json("{").is_err());
        assert!(CommonOpts::from_wire_json("{}").is_err());
        assert!(CommonOpts::from_wire_json(r#"{"figures":[1],"quick":true}"#).is_err());
    }

    #[test]
    fn usage_fragment_lists_only_enabled_flags() {
        let frag = FlagSet {
            jobs: true,
            log_level: true,
            ..FlagSet::default()
        }
        .usage_fragment();
        assert_eq!(frag, "[--jobs N] [--log-level LEVEL]");
        assert!(FlagSet::all()
            .usage_fragment()
            .contains("--events-max-bytes"));
    }
}
