//! Support library for the benchmark harness and the `repro` binary: deterministic
//! speedup metrics extracted from figure rows, `BENCH.json` serialization, and the
//! regression-floor check against the checked-in `baselines.json`.
//!
//! The bench-smoke CI job runs the harness in quick mode, uploads `BENCH.json` as an
//! artifact, and fails the build if any tracked Piccolo-vs-baseline speedup drops below
//! its floor. Floors live in `crates/bench/baselines.json` — a flat JSON object mapping
//! metric name to the minimum acceptable value. Metrics are **model outputs** (cycle
//! ratios), not wall-clock, so they are deterministic and safe to gate CI on.

#![forbid(unsafe_code)]

pub mod cli;

use piccolo::campaign::CampaignStats;
use piccolo::experiments::{geomean, Point};
use piccolo::json::Json;
use piccolo_graph::Dataset;
use piccolo_obs as obs;
use std::path::{Path, PathBuf};

/// Loads `--external NAME=PATH` graphs (paths pre-resolved by the caller — the bench
/// harness and `repro` resolve differently) through the `piccolo-io` snapshot cache
/// and registers them in `piccolo_graph::external`, printing one status line per graph
/// to stderr (`snapshot cache hit|miss|direct`, which CI greps). Returns the dataset
/// handles in input order, so registry ids — and therefore output — are deterministic.
///
/// When a graph's snapshot *and* its `.meta` sidecar (fingerprint + counts, written on
/// the first full load) both exist, the graph is registered **lazily**: identity,
/// `spec()` and campaign plan hashing work from the sidecar metadata alone, and the
/// CSR is only materialized if a simulation unit actually needs it. A fully-replayed
/// `repro --resume` therefore never parses or even mmaps the graph payload.
pub fn load_externals(
    externals: &[(String, PathBuf)],
    snapshot_dir: &Path,
) -> Result<Vec<Dataset>, String> {
    let mut datasets = Vec::new();
    for (name, path) in externals {
        if let Some(ds) = register_lazy_from_sidecar(name, path, snapshot_dir) {
            datasets.push(ds);
            continue;
        }
        let cache_span = obs::spans_enabled()
            .then(|| obs::span("snapshot_cache", vec![("graph", name.as_str().into())]));
        let loaded = piccolo_io::load_graph_with(path, None, snapshot_dir)
            .map_err(|e| format!("cannot load external graph '{name}': {e}"))?;
        if loaded.graph.num_vertices() == 0 {
            return Err(format!(
                "external graph '{name}' ({}) is empty",
                path.display()
            ));
        }
        if let Some(span) = cache_span {
            span.close(vec![("status", loaded.status.to_string().into())]);
        }
        obs::metrics::counter_add(
            match loaded.status {
                piccolo_io::SnapshotStatus::Hit => "io/snapshot_cache_hits",
                piccolo_io::SnapshotStatus::Miss => "io/snapshot_cache_misses",
                piccolo_io::SnapshotStatus::Direct => "io/snapshot_cache_direct",
            },
            1,
        );
        obs::info(format!(
            "external '{name}': {} ({} vertices, {} edges) snapshot cache {}",
            path.display(),
            loaded.graph.num_vertices(),
            loaded.graph.num_edges(),
            loaded.status
        ));
        let snapshot = loaded.snapshot.clone();
        let ds = piccolo_graph::external::register(name, loaded.graph);
        if let Some(snapshot) = snapshot {
            write_meta_sidecar(&snapshot, ds);
        }
        datasets.push(ds);
    }
    Ok(datasets)
}

/// Metadata persisted next to a graph's snapshot (`<snapshot>.meta`, JSON with u64s as
/// decimal strings): enough to register the graph lazily on later invocations. The
/// snapshot filename is keyed by the source's content hash, so the sidecar can never
/// describe different content than the snapshot beside it.
struct SidecarMeta {
    fingerprint: u64,
    vertices: u64,
    edges: u64,
}

fn meta_path(snapshot: &Path) -> PathBuf {
    snapshot.with_extension("meta")
}

/// Best-effort: a failed sidecar write only means the next invocation loads eagerly.
fn write_meta_sidecar(snapshot: &Path, ds: Dataset) {
    let Dataset::External { id } = ds else {
        return;
    };
    let (Some(fingerprint), Some((vertices, edges))) = (
        piccolo_graph::external::content_fingerprint(id),
        piccolo_graph::external::vertices_edges(id),
    ) else {
        return;
    };
    let json = Json::obj([
        ("fingerprint", Json::str(fingerprint.to_string())),
        ("vertices", Json::str(vertices.to_string())),
        ("edges", Json::str(edges.to_string())),
    ]);
    let _ = std::fs::write(meta_path(snapshot), json.to_string() + "\n");
}

fn read_meta_sidecar(path: &Path) -> Option<SidecarMeta> {
    let text = std::fs::read_to_string(path).ok()?;
    let json = piccolo::json::parse(&text).ok()?;
    let field = |key: &str| json.get(key)?.as_str()?.parse::<u64>().ok();
    Some(SidecarMeta {
        fingerprint: field("fingerprint")?,
        vertices: field("vertices")?,
        edges: field("edges")?,
    })
}

/// The sidecar fast path: if `path`'s snapshot and `.meta` sidecar both exist, register
/// the graph lazily from the metadata and return its handle without touching the
/// payload. Any miss (direct `.pcsr` input, no snapshot yet, unreadable sidecar) falls
/// back to the eager load.
fn register_lazy_from_sidecar(name: &str, path: &Path, snapshot_dir: &Path) -> Option<Dataset> {
    if path.extension().and_then(|e| e.to_str()) == Some("pcsr") {
        return None; // direct loads bypass the snapshot cache entirely
    }
    let format = piccolo_io::TextFormat::from_path(path);
    let snapshot = piccolo_io::snapshot_path(path, format, snapshot_dir).ok()?;
    if !snapshot.is_file() {
        return None;
    }
    let meta = read_meta_sidecar(&meta_path(&snapshot))?;
    if meta.vertices == 0 {
        return None; // mirror the eager path's empty-graph rejection
    }
    if obs::spans_enabled() {
        obs::span("snapshot_cache", vec![("graph", name.into())])
            .close(vec![("status", "hit (lazy)".into())]);
    }
    obs::metrics::counter_add("io/snapshot_cache_hits", 1);
    obs::info(format!(
        "external '{name}': {} ({} vertices, {} edges) snapshot cache hit (lazy)",
        path.display(),
        meta.vertices,
        meta.edges,
    ));
    let label = name.to_string();
    let source = path.to_path_buf();
    let dir = snapshot_dir.to_path_buf();
    Some(piccolo_graph::external::register_lazy(
        name,
        meta.fingerprint,
        meta.vertices,
        meta.edges,
        // Re-enter the snapshot cache on materialization: a healthy snapshot loads as
        // a straight `.pcsr` hit; a corrupt one transparently re-parses the source.
        move || match piccolo_io::load_graph_with(&source, None, &dir) {
            Ok(loaded) => loaded.graph,
            Err(e) => panic!("cannot load external graph '{label}': {e}"),
        },
    ))
}

/// Wall-clock measurement of one large simulation unit run with its interior serial
/// and then split across `jobs` intra-run worker threads
/// ([`piccolo::set_intra_jobs`]). Recorded in `BENCH.json`'s `intra` section; never
/// ratchet-checked (wall-clock is machine-dependent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntraBench {
    /// Intra-run worker threads of the parallel sample.
    pub jobs: usize,
    /// Wall-clock of the serial-interior run, nanoseconds.
    pub serial_ns: u64,
    /// Wall-clock of the same run with `jobs` intra threads, nanoseconds.
    pub parallel_ns: u64,
}

impl IntraBench {
    /// Serial-over-parallel wall-clock ratio.
    pub fn speedup(&self) -> f64 {
        self.serial_ns as f64 / self.parallel_ns.max(1) as f64
    }
}

/// Timing and rows of one benched figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureBench {
    /// Machine-readable figure name (`fig10`).
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// Number of rows the figure produced.
    pub rows: usize,
    /// Fastest sample in milliseconds.
    pub min_ms: f64,
    /// Mean sample in milliseconds.
    pub mean_ms: f64,
}

fn gm_of<'a>(
    points: &'a [Point],
    key: &str,
    select: impl Fn(&str) -> bool + 'a,
) -> Vec<(String, f64)> {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| select(&p.label))
        .map(|p| p.value)
        .collect();
    if vals.is_empty() {
        Vec::new()
    } else {
        vec![(key.to_string(), geomean(&vals))]
    }
}

/// Extracts the deterministic Piccolo-vs-baseline speedup metrics tracked by the
/// bench-smoke CI job from one figure's rows. Figures without a meaningful
/// Piccolo-vs-baseline ratio contribute no metrics.
pub fn speedup_metrics(figure: &str, points: &[Point]) -> Vec<(String, f64)> {
    match figure {
        // FIM microbenchmark: conventional-vs-FIM service-time ratio per stride case.
        "fig09" => gm_of(points, "fig09/gm_fim_speedup", |_| true),
        // Overall speedup: the figure's own geometric-mean row.
        "fig10" => points
            .iter()
            .find(|p| p.label == "GM/Piccolo")
            .map(|p| vec![("fig10/gm_piccolo".to_string(), p.value)])
            .unwrap_or_default(),
        // Cache-design sweep: the default Piccolo cache (LRU) vs the conventional base.
        "fig11" => gm_of(points, "fig11/gm_piccolo_lru", |l| {
            l.ends_with("/Piccolo (LRU)")
        }),
        // Synthetic graphs.
        "fig18" => gm_of(points, "fig18/gm_piccolo", |l| l.ends_with("/Piccolo")),
        // Piccolo vs the vertex-centric conventional baseline, for both traversal
        // orders. The EC rows gate the edge-centric Best-tiling search: a regression to
        // a fixed family-default factor shows up here.
        "fig19a" => {
            let mut m = gm_of(points, "fig19a/gm_vc_piccolo", |l| {
                l.ends_with("/VC/Piccolo")
            });
            m.extend(gm_of(points, "fig19a/gm_ec_piccolo", |l| {
                l.ends_with("/EC/Piccolo")
            }));
            m
        }
        // OLAP column scans.
        "fig19b" => gm_of(points, "fig19b/gm_olap", |_| true),
        // External graphs (`--external NAME=PATH`): Piccolo vs the vertex-centric
        // conventional baseline on both engines, so real datasets can carry
        // `baselines.json` floors just like the paper figures.
        "external" => {
            let mut m = gm_of(points, "external/gm_vc_piccolo", |l| {
                l.ends_with("/VC/Piccolo")
            });
            m.extend(gm_of(points, "external/gm_ec_piccolo", |l| {
                l.ends_with("/EC/Piccolo")
            }));
            m
        }
        // Enhanced-FIM sweep: plain Piccolo rows only (not "Piccolo enhanced").
        "fig20a" => gm_of(points, "fig20a/gm_piccolo", |l| l.ends_with("/Piccolo")),
        _ => Vec::new(),
    }
}

/// Peak memory of this process so far, from `/proc/self/status` (Linux): `VmHWM` is
/// the resident-set high-water mark, `VmPeak` the address-space peak (which includes
/// file-backed `.pcsr` mappings the kernel can drop at will — the out-of-core paths
/// keep `VmHWM` small while `VmPeak` tracks the mapped bytes). `None` off Linux or if
/// the fields are missing — callers omit the section rather than report zeros.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryStats {
    /// `VmHWM`: peak resident set size, in KiB.
    pub peak_rss_kb: u64,
    /// `VmPeak`: peak virtual address-space size, in KiB.
    pub vm_peak_kb: u64,
}

/// Reads [`MemoryStats`] for the current process. See the struct docs for semantics.
pub fn memory_stats() -> Option<MemoryStats> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let field = |name: &str| -> Option<u64> {
        status
            .lines()
            .find(|l| l.starts_with(name))?
            .split_whitespace()
            .nth(1)?
            .parse()
            .ok()
    };
    Some(MemoryStats {
        peak_rss_kb: field("VmHWM:")?,
        vm_peak_kb: field("VmPeak:")?,
    })
}

/// Serializes a bench run into the `BENCH.json` document (schema `piccolo-bench/v1`).
///
/// Unlike `results.json` this document *does* carry wall-clock numbers (`min_ms`,
/// `mean_ms`, `jobs`) — it tracks the perf trajectory of the harness itself and is
/// uploaded as a CI artifact, never byte-compared. `campaign` records the scheduling
/// stats of the row-capture campaign (graphs built once vs builds saved), so dedup
/// regressions are visible in the artifact history. On Linux a `memory` section
/// reports the process peak RSS / address space ([`memory_stats`], sampled at
/// serialization time — after every figure has run), which the out-of-core CI job
/// greps to prove a capped run stayed capped. The `host` object carries the
/// host-side per-phase wall-clock attribution from [`piccolo::phase_profile`] —
/// like everything else host-side it flows *out* of the run only, and is never
/// floor- or ratchet-checked.
pub fn bench_json(
    samples: u32,
    jobs: usize,
    figures: &[FigureBench],
    metrics: &[(String, f64)],
    campaign: &CampaignStats,
    intra: Option<&IntraBench>,
) -> String {
    let mut pairs: Vec<(&str, Json)> = vec![
        ("schema", Json::str("piccolo-bench/v1")),
        ("samples", Json::Num(samples as f64)),
        ("jobs", Json::Num(jobs as f64)),
        (
            "campaign",
            Json::obj([
                ("figures", Json::Num(campaign.figures as f64)),
                ("sim_runs", Json::Num(campaign.sim_runs as f64)),
                ("graphs_built", Json::Num(campaign.graphs_built as f64)),
                ("builds_saved", Json::Num(campaign.builds_saved as f64)),
                ("graphs_evicted", Json::Num(campaign.graphs_evicted as f64)),
                // Per-phase DRAM-clock breakdown of the captured campaign. Decimal
                // strings like the results codec's counters, so they can never
                // round past 2^53.
                (
                    "scatter_mem_clocks",
                    Json::str(campaign.scatter_mem_clocks.to_string()),
                ),
                (
                    "apply_mem_clocks",
                    Json::str(campaign.apply_mem_clocks.to_string()),
                ),
            ]),
        ),
    ];
    if let Some(intra) = intra {
        pairs.push((
            "intra",
            Json::obj([
                ("jobs", Json::Num(intra.jobs as f64)),
                ("serial_ns", Json::str(intra.serial_ns.to_string())),
                ("parallel_ns", Json::str(intra.parallel_ns.to_string())),
                ("speedup", Json::Num(intra.speedup())),
            ]),
        ));
    }
    if let Some(memory) = memory_stats() {
        pairs.push((
            "memory",
            Json::obj([
                ("peak_rss_kb", Json::str(memory.peak_rss_kb.to_string())),
                ("vm_peak_kb", Json::str(memory.vm_peak_kb.to_string())),
            ]),
        ));
    }
    // Host-side wall-clock attribution of the simulator's pipeline phases
    // (`piccolo::phase_profile`, cumulative over this process). Everything in this
    // object is a measurement of *this machine*, never of the simulated hardware,
    // and is excluded from every ratchet and floor — see docs/observability.md.
    let profile = piccolo::phase_profile();
    pairs.push((
        "host",
        Json::obj([
            ("scatter_ns", Json::str(profile.scatter_ns.to_string())),
            ("apply_ns", Json::str(profile.apply_ns.to_string())),
            ("frontier_ns", Json::str(profile.frontier_ns.to_string())),
        ]),
    ));
    pairs.extend([
        (
            "figures",
            Json::Arr(
                figures
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("name", Json::str(&f.name)),
                            ("title", Json::str(&f.title)),
                            ("rows", Json::Num(f.rows as f64)),
                            ("min_ms", Json::Num(f.min_ms)),
                            ("mean_ms", Json::Num(f.mean_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "metrics",
            Json::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
    ]);
    let mut out = Json::obj(pairs).to_string();
    out.push('\n');
    out
}

/// Checks measured metrics against the floors of a parsed `baselines.json` (a flat
/// object mapping metric name to minimum acceptable value).
///
/// Returns the list of failure messages — empty means every floor holds. A floor whose
/// metric was not measured is a failure too, so silently dropping a figure from the
/// bench cannot fade a regression gate out.
pub fn check_floors(metrics: &[(String, f64)], baselines: &Json) -> Result<Vec<String>, String> {
    let pairs = baselines
        .as_object()
        .ok_or("baselines.json must be a flat JSON object of metric -> floor")?;
    let mut failures = Vec::new();
    for (name, floor) in pairs {
        let floor = floor
            .as_f64()
            .ok_or_else(|| format!("baseline '{name}' is not a number"))?;
        match metrics.iter().find(|(k, _)| k == name) {
            None => failures.push(format!("metric '{name}' was not measured (floor {floor})")),
            Some((_, value)) if *value < floor => failures.push(format!(
                "metric '{name}' regressed: {value:.4} < floor {floor:.4}"
            )),
            Some(_) => {}
        }
    }
    Ok(failures)
}

/// Tolerance of the trajectory ratchet: deterministic metrics reproduce exactly, so
/// this only absorbs shortest-round-trip printing of the committed bests.
pub const TRAJECTORY_EPS: f64 = 1e-9;

/// Checks measured metrics against the best previously committed values
/// (`crates/bench/trajectory.json`, a flat metric -> best-value object). Unlike
/// [`check_floors`]' hand-set static floors, the trajectory is a **ratchet**: the
/// committed value is the best the model has ever achieved, and any measured value
/// below it (beyond [`TRAJECTORY_EPS`]) is a regression. Metrics are deterministic
/// model outputs, so "slightly below best" is a real behavior change, not noise.
///
/// Returns `(failures, improvements)`: failure messages (a tracked metric regressed
/// or was not measured at all) and the metrics that beat their committed best (or are
/// new), for `--update-ratchet`.
#[allow(clippy::type_complexity)]
pub fn check_trajectory(
    metrics: &[(String, f64)],
    trajectory: &Json,
) -> Result<(Vec<String>, Vec<(String, f64)>), String> {
    let pairs = trajectory
        .as_object()
        .ok_or("trajectory.json must be a flat JSON object of metric -> best value")?;
    let mut failures = Vec::new();
    let mut improved = Vec::new();
    for (name, best) in pairs {
        let best = best
            .as_f64()
            .ok_or_else(|| format!("trajectory entry '{name}' is not a number"))?;
        match metrics.iter().find(|(k, _)| k == name) {
            None => failures.push(format!(
                "metric '{name}' was not measured (trajectory best {best})"
            )),
            Some((_, value)) if *value < best - TRAJECTORY_EPS => failures.push(format!(
                "metric '{name}' fell below its best committed value: {value:.6} < {best:.6}"
            )),
            Some((_, value)) if *value > best + TRAJECTORY_EPS => {
                improved.push((name.clone(), *value));
            }
            Some(_) => {}
        }
    }
    for (name, value) in metrics {
        if !pairs.iter().any(|(k, _)| k == name) {
            improved.push((name.clone(), *value));
        }
    }
    Ok((failures, improved))
}

/// Builds the trajectory document that `--update-ratchet` writes back: every
/// committed best raised to the measured value where the measurement beat it, plus
/// newly measured metrics appended in measurement order. Existing keys keep their
/// order, so the diff of an update is minimal.
pub fn updated_trajectory(metrics: &[(String, f64)], trajectory: &Json) -> Json {
    let existing = trajectory.as_object().unwrap_or(&[]);
    let mut pairs: Vec<(String, Json)> = existing
        .iter()
        .map(|(name, best)| {
            let best = best.as_f64().unwrap_or(f64::NEG_INFINITY);
            let value = match metrics.iter().find(|(k, _)| k == name) {
                Some((_, v)) if *v > best + TRAJECTORY_EPS => *v,
                _ => best,
            };
            (name.clone(), Json::Num(value))
        })
        .collect();
    for (name, value) in metrics {
        if !pairs.iter().any(|(k, _)| k == name) {
            pairs.push((name.clone(), Json::Num(*value)));
        }
    }
    Json::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo::json::parse;

    fn pt(label: &str, value: f64) -> Point {
        Point {
            label: label.to_string(),
            value,
        }
    }

    #[test]
    fn fig10_metric_is_the_gm_row() {
        let points = [pt("BFS/SW/Piccolo", 3.0), pt("GM/Piccolo", 2.5)];
        let m = speedup_metrics("fig10", &points);
        assert_eq!(m, vec![("fig10/gm_piccolo".to_string(), 2.5)]);
    }

    #[test]
    fn fig20a_metric_excludes_enhanced_rows() {
        let points = [
            pt("PR/DDR4x4/Piccolo", 2.0),
            pt("PR/DDR4x4/Piccolo enhanced", 8.0),
        ];
        let m = speedup_metrics("fig20a", &points);
        assert_eq!(m.len(), 1);
        assert!((m[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn figures_without_ratios_contribute_nothing() {
        assert!(speedup_metrics("table2", &[pt("SW/paper-edges", 1.0)]).is_empty());
        assert!(speedup_metrics("fig10", &[]).is_empty());
    }

    #[test]
    fn external_figure_tracks_both_traversal_orders() {
        let points = [
            pt("PR/web/VC/Piccolo", 2.0),
            pt("BFS/web/VC/Piccolo", 8.0),
            pt("PR/web/EC/Piccolo", 1.5),
            pt("PR/web/VC/Conventional", 1.0),
        ];
        let m = speedup_metrics("external", &points);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "external/gm_vc_piccolo");
        assert!((m[0].1 - 4.0).abs() < 1e-12); // geomean(2, 8)
        assert_eq!(m[1], ("external/gm_ec_piccolo".to_string(), 1.5));
    }

    #[test]
    fn fig19a_tracks_both_traversal_orders() {
        let points = [
            pt("PR/TW/VC/Piccolo", 2.0),
            pt("PR/TW/EC/Piccolo", 1.5),
            pt("PR/TW/EC/Conventional", 0.5),
        ];
        let m = speedup_metrics("fig19a", &points);
        assert_eq!(
            m,
            vec![
                ("fig19a/gm_vc_piccolo".to_string(), 2.0),
                ("fig19a/gm_ec_piccolo".to_string(), 1.5),
            ]
        );
    }

    #[test]
    fn floors_pass_fail_and_catch_missing_metrics() {
        let baselines = parse(r#"{"fig10/gm_piccolo": 2.0, "fig09/gm_fim_speedup": 3.0}"#).unwrap();
        let ok = check_floors(
            &[
                ("fig10/gm_piccolo".to_string(), 2.4),
                ("fig09/gm_fim_speedup".to_string(), 3.5),
            ],
            &baselines,
        )
        .unwrap();
        assert!(ok.is_empty());
        let bad = check_floors(&[("fig10/gm_piccolo".to_string(), 1.5)], &baselines).unwrap();
        assert_eq!(bad.len(), 2, "{bad:?}"); // one regression + one missing metric
        assert!(check_floors(&[], &parse("[1,2]").unwrap()).is_err());
    }

    #[test]
    fn bench_json_roundtrips() {
        let doc = bench_json(
            2,
            4,
            &[FigureBench {
                name: "fig10".to_string(),
                title: "Fig. 10".to_string(),
                rows: 12,
                min_ms: 1.25,
                mean_ms: 1.5,
            }],
            &[("fig10/gm_piccolo".to_string(), 2.5)],
            &CampaignStats {
                figures: 1,
                sim_runs: 11,
                measure_units: 0,
                graphs_built: 1,
                builds_saved: 0,
                graphs_evicted: 1,
                scatter_mem_clocks: (1 << 54) + 1, // not representable as f64
                apply_mem_clocks: 12,
            },
            Some(&IntraBench {
                jobs: 4,
                serial_ns: 1_000,
                parallel_ns: 400,
            }),
        );
        let v = parse(doc.trim()).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("piccolo-bench/v1")
        );
        assert_eq!(
            v.get("campaign")
                .and_then(|c| c.get("graphs_built"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            v.get("campaign")
                .and_then(|c| c.get("scatter_mem_clocks"))
                .and_then(Json::as_str)
                .and_then(|s| s.parse::<u64>().ok()),
            Some((1 << 54) + 1),
            "phase clocks ride as decimal strings"
        );
        let intra = v.get("intra").expect("intra section present when measured");
        assert_eq!(intra.get("jobs").and_then(Json::as_f64), Some(4.0));
        assert_eq!(intra.get("speedup").and_then(Json::as_f64), Some(2.5));
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("fig10/gm_piccolo"))
                .and_then(Json::as_f64),
            Some(2.5)
        );
        assert_eq!(
            v.get("figures").unwrap().as_array().unwrap()[0]
                .get("rows")
                .and_then(Json::as_f64),
            Some(12.0)
        );
    }

    #[test]
    fn bench_json_omits_intra_when_not_measured() {
        let doc = bench_json(1, 1, &[], &[], &CampaignStats::default(), None);
        assert!(parse(doc.trim()).unwrap().get("intra").is_none());
    }

    #[test]
    #[cfg(target_os = "linux")]
    fn bench_json_reports_peak_memory_on_linux() {
        let stats = memory_stats().expect("/proc/self/status has VmHWM and VmPeak");
        assert!(stats.peak_rss_kb > 0);
        assert!(stats.vm_peak_kb >= stats.peak_rss_kb);
        let doc = bench_json(1, 1, &[], &[], &CampaignStats::default(), None);
        let memory = parse(doc.trim()).unwrap();
        let memory = memory.get("memory").expect("memory section on linux");
        let kb = memory
            .get("peak_rss_kb")
            .and_then(Json::as_str)
            .and_then(|s| s.parse::<u64>().ok())
            .unwrap();
        assert!(kb >= stats.peak_rss_kb, "peak rss only grows");
    }

    #[test]
    fn trajectory_ratchet_passes_fails_and_reports_improvements() {
        let trajectory = parse(r#"{"fig10/gm_piccolo": 2.0, "fig18/gm_piccolo": 1.0}"#).unwrap();
        // Matching the best exactly passes; beating it is an improvement; a brand-new
        // metric is an improvement too.
        let (failures, improved) = check_trajectory(
            &[
                ("fig10/gm_piccolo".to_string(), 2.0),
                ("fig18/gm_piccolo".to_string(), 1.5),
                ("fig11/gm_piccolo_lru".to_string(), 3.0),
            ],
            &trajectory,
        )
        .unwrap();
        assert!(failures.is_empty(), "{failures:?}");
        assert_eq!(
            improved,
            vec![
                ("fig18/gm_piccolo".to_string(), 1.5),
                ("fig11/gm_piccolo_lru".to_string(), 3.0),
            ]
        );
        // Falling below the best — or not measuring a tracked metric — fails.
        let (failures, _) =
            check_trajectory(&[("fig10/gm_piccolo".to_string(), 1.999)], &trajectory).unwrap();
        assert_eq!(failures.len(), 2, "{failures:?}");
        assert!(failures[0].contains("below its best"));
        assert!(failures[1].contains("not measured"));
        // Sub-eps jitter is absorbed.
        let (failures, improved) = check_trajectory(
            &[
                ("fig10/gm_piccolo".to_string(), 2.0 - 1e-12),
                ("fig18/gm_piccolo".to_string(), 1.0 + 1e-12),
            ],
            &trajectory,
        )
        .unwrap();
        assert!(failures.is_empty());
        assert!(improved.is_empty());
        assert!(check_trajectory(&[], &parse("[]").unwrap()).is_err());
    }

    #[test]
    fn updated_trajectory_raises_bests_and_appends_new_metrics() {
        let trajectory = parse(r#"{"a": 2.0, "b": 1.0}"#).unwrap();
        let updated = updated_trajectory(
            &[
                ("b".to_string(), 1.5),  // improved -> raised
                ("a".to_string(), 0.5),  // regressed -> best kept
                ("c".to_string(), 4.25), // new -> appended
            ],
            &trajectory,
        );
        let pairs = updated.as_object().unwrap();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[0].0, "a");
        assert_eq!(pairs[0].1.as_f64(), Some(2.0));
        assert_eq!(pairs[1].1.as_f64(), Some(1.5));
        assert_eq!(pairs[2].0, "c");
        assert_eq!(pairs[2].1.as_f64(), Some(4.25));
    }

    #[test]
    fn sidecar_fast_path_registers_lazily_and_full_replay_never_materializes() {
        use piccolo::experiments::{external_spec, Scale};
        use piccolo::report::results_json;
        use piccolo::sweep::SweepRunner;
        use piccolo_graph::{external, generate, Dataset};
        use std::io::Write as _;

        let dir = std::env::temp_dir().join(format!("piccolo-bench-lazy-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let edge_file = dir.join("lazy.tsv");
        let cache_dir = dir.join("snaps");
        let graph = generate::kronecker(11, 5, 31);
        {
            let mut f = std::fs::File::create(&edge_file).unwrap();
            for e in graph.iter_edges() {
                writeln!(f, "{}\t{}\t{}", e.src, e.dst, e.weight).unwrap();
            }
        }
        let externals = [("bench-lazy-ext".to_string(), edge_file.clone())];

        // First invocation: no snapshot yet, so the load is eager — and it leaves a
        // `.meta` sidecar next to the snapshot for next time.
        let ds = load_externals(&externals, &cache_dir).unwrap()[0];
        let Dataset::External { id } = ds else {
            panic!("load_externals returns External datasets");
        };
        assert_eq!(external::is_loaded(id), Some(true), "first load is eager");
        // The text round trip may drop trailing isolated vertices, so the loaded
        // graph — not the generator output — is the reference content.
        let expected = (*ds.build_shared(0, 0)).clone();
        let snapshot = piccolo_io::snapshot_path(
            &edge_file,
            piccolo_io::TextFormat::from_path(&edge_file),
            &cache_dir,
        )
        .unwrap();
        assert!(snapshot.is_file(), "the eager load wrote a snapshot");
        assert!(meta_path(&snapshot).is_file(), "and a sidecar beside it");

        // Journal a full campaign over the external graph.
        let scale = Scale {
            scale_shift: 13,
            seed: 7,
            max_iterations: 2,
        };
        let specs = [external_spec(scale, &[ds])];
        let journal = dir.join("journal.jsonl");
        let first = SweepRunner::sequential()
            .run_campaign_resumed(scale, &specs, &journal)
            .unwrap();
        assert!(first.executed > 0);

        // Second invocation: snapshot + sidecar exist, so registration is lazy (same
        // id, graph not in memory) …
        let ds2 = load_externals(&externals, &cache_dir).unwrap()[0];
        assert_eq!(ds2, ds, "re-registration keeps the id");
        assert_eq!(
            external::is_loaded(id),
            Some(false),
            "sidecar fast path must not materialize the graph"
        );
        assert_eq!(ds.spec().paper_edges, expected.num_edges());
        assert_eq!(
            external::is_loaded(id),
            Some(false),
            "spec() is metadata-only"
        );

        // … and a fully-replayed resume finishes the campaign without ever running
        // the loader: same bytes, zero graphs built or loaded.
        let resumed = SweepRunner::sequential()
            .run_campaign_resumed(scale, &specs, &journal)
            .unwrap();
        assert_eq!(resumed.executed, 0);
        assert_eq!(resumed.replayed, first.executed + first.replayed);
        assert_eq!(resumed.run.stats.graphs_built, 0);
        assert_eq!(
            external::is_loaded(id),
            Some(false),
            "a fully-replayed campaign never loads the external graph"
        );
        assert_eq!(
            results_json(scale, &resumed.run.figures),
            results_json(scale, &first.run.figures),
            "replayed results are byte-identical"
        );

        // Materializing on demand still works and verifies against the sidecar.
        assert_eq!(*ds.build_shared(0, 0), expected);
        assert_eq!(external::is_loaded(id), Some(true));

        let _ = std::fs::remove_dir_all(&dir);
    }
}
