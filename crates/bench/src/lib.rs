//! Benchmark harness crate: see the `repro` binary and the Criterion benches under
//! `benches/`. All experiment logic lives in `piccolo::experiments`.
