//! Support library for the benchmark harness and the `repro` binary: deterministic
//! speedup metrics extracted from figure rows, `BENCH.json` serialization, and the
//! regression-floor check against the checked-in `baselines.json`.
//!
//! The bench-smoke CI job runs the harness in quick mode, uploads `BENCH.json` as an
//! artifact, and fails the build if any tracked Piccolo-vs-baseline speedup drops below
//! its floor. Floors live in `crates/bench/baselines.json` — a flat JSON object mapping
//! metric name to the minimum acceptable value. Metrics are **model outputs** (cycle
//! ratios), not wall-clock, so they are deterministic and safe to gate CI on.

use piccolo::campaign::CampaignStats;
use piccolo::experiments::{geomean, Point};
use piccolo::json::Json;
use piccolo_graph::Dataset;
use std::path::{Path, PathBuf};

/// Loads `--external NAME=PATH` graphs (paths pre-resolved by the caller — the bench
/// harness and `repro` resolve differently) through the `piccolo-io` snapshot cache
/// and registers them in `piccolo_graph::external`, printing one status line per graph
/// to stderr (`snapshot cache hit|miss|direct`, which CI greps). Returns the dataset
/// handles in input order, so registry ids — and therefore output — are deterministic.
pub fn load_externals(
    externals: &[(String, PathBuf)],
    snapshot_dir: &Path,
) -> Result<Vec<Dataset>, String> {
    let mut datasets = Vec::new();
    for (name, path) in externals {
        let loaded = piccolo_io::load_graph_with(path, None, snapshot_dir)
            .map_err(|e| format!("cannot load external graph '{name}': {e}"))?;
        if loaded.graph.num_vertices() == 0 {
            return Err(format!(
                "external graph '{name}' ({}) is empty",
                path.display()
            ));
        }
        eprintln!(
            "external '{name}': {} ({} vertices, {} edges) snapshot cache {}",
            path.display(),
            loaded.graph.num_vertices(),
            loaded.graph.num_edges(),
            loaded.status
        );
        datasets.push(piccolo_graph::external::register(name, loaded.graph));
    }
    Ok(datasets)
}

/// Timing and rows of one benched figure.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureBench {
    /// Machine-readable figure name (`fig10`).
    pub name: String,
    /// Human-readable title.
    pub title: String,
    /// Number of rows the figure produced.
    pub rows: usize,
    /// Fastest sample in milliseconds.
    pub min_ms: f64,
    /// Mean sample in milliseconds.
    pub mean_ms: f64,
}

fn gm_of<'a>(
    points: &'a [Point],
    key: &str,
    select: impl Fn(&str) -> bool + 'a,
) -> Vec<(String, f64)> {
    let vals: Vec<f64> = points
        .iter()
        .filter(|p| select(&p.label))
        .map(|p| p.value)
        .collect();
    if vals.is_empty() {
        Vec::new()
    } else {
        vec![(key.to_string(), geomean(&vals))]
    }
}

/// Extracts the deterministic Piccolo-vs-baseline speedup metrics tracked by the
/// bench-smoke CI job from one figure's rows. Figures without a meaningful
/// Piccolo-vs-baseline ratio contribute no metrics.
pub fn speedup_metrics(figure: &str, points: &[Point]) -> Vec<(String, f64)> {
    match figure {
        // FIM microbenchmark: conventional-vs-FIM service-time ratio per stride case.
        "fig09" => gm_of(points, "fig09/gm_fim_speedup", |_| true),
        // Overall speedup: the figure's own geometric-mean row.
        "fig10" => points
            .iter()
            .find(|p| p.label == "GM/Piccolo")
            .map(|p| vec![("fig10/gm_piccolo".to_string(), p.value)])
            .unwrap_or_default(),
        // Cache-design sweep: the default Piccolo cache (LRU) vs the conventional base.
        "fig11" => gm_of(points, "fig11/gm_piccolo_lru", |l| {
            l.ends_with("/Piccolo (LRU)")
        }),
        // Synthetic graphs.
        "fig18" => gm_of(points, "fig18/gm_piccolo", |l| l.ends_with("/Piccolo")),
        // Piccolo vs the vertex-centric conventional baseline, for both traversal
        // orders. The EC rows gate the edge-centric Best-tiling search: a regression to
        // a fixed family-default factor shows up here.
        "fig19a" => {
            let mut m = gm_of(points, "fig19a/gm_vc_piccolo", |l| {
                l.ends_with("/VC/Piccolo")
            });
            m.extend(gm_of(points, "fig19a/gm_ec_piccolo", |l| {
                l.ends_with("/EC/Piccolo")
            }));
            m
        }
        // OLAP column scans.
        "fig19b" => gm_of(points, "fig19b/gm_olap", |_| true),
        // External graphs (`--external NAME=PATH`): Piccolo vs the vertex-centric
        // conventional baseline on both engines, so real datasets can carry
        // `baselines.json` floors just like the paper figures.
        "external" => {
            let mut m = gm_of(points, "external/gm_vc_piccolo", |l| {
                l.ends_with("/VC/Piccolo")
            });
            m.extend(gm_of(points, "external/gm_ec_piccolo", |l| {
                l.ends_with("/EC/Piccolo")
            }));
            m
        }
        // Enhanced-FIM sweep: plain Piccolo rows only (not "Piccolo enhanced").
        "fig20a" => gm_of(points, "fig20a/gm_piccolo", |l| l.ends_with("/Piccolo")),
        _ => Vec::new(),
    }
}

/// Serializes a bench run into the `BENCH.json` document (schema `piccolo-bench/v1`).
///
/// Unlike `results.json` this document *does* carry wall-clock numbers (`min_ms`,
/// `mean_ms`, `jobs`) — it tracks the perf trajectory of the harness itself and is
/// uploaded as a CI artifact, never byte-compared. `campaign` records the scheduling
/// stats of the row-capture campaign (graphs built once vs builds saved), so dedup
/// regressions are visible in the artifact history.
pub fn bench_json(
    samples: u32,
    jobs: usize,
    figures: &[FigureBench],
    metrics: &[(String, f64)],
    campaign: &CampaignStats,
) -> String {
    let doc = Json::obj([
        ("schema", Json::str("piccolo-bench/v1")),
        ("samples", Json::Num(samples as f64)),
        ("jobs", Json::Num(jobs as f64)),
        (
            "campaign",
            Json::obj([
                ("figures", Json::Num(campaign.figures as f64)),
                ("sim_runs", Json::Num(campaign.sim_runs as f64)),
                ("graphs_built", Json::Num(campaign.graphs_built as f64)),
                ("builds_saved", Json::Num(campaign.builds_saved as f64)),
                ("graphs_evicted", Json::Num(campaign.graphs_evicted as f64)),
            ]),
        ),
        (
            "figures",
            Json::Arr(
                figures
                    .iter()
                    .map(|f| {
                        Json::obj([
                            ("name", Json::str(&f.name)),
                            ("title", Json::str(&f.title)),
                            ("rows", Json::Num(f.rows as f64)),
                            ("min_ms", Json::Num(f.min_ms)),
                            ("mean_ms", Json::Num(f.mean_ms)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "metrics",
            Json::Obj(
                metrics
                    .iter()
                    .map(|(k, v)| (k.clone(), Json::Num(*v)))
                    .collect(),
            ),
        ),
    ]);
    let mut out = doc.to_string();
    out.push('\n');
    out
}

/// Checks measured metrics against the floors of a parsed `baselines.json` (a flat
/// object mapping metric name to minimum acceptable value).
///
/// Returns the list of failure messages — empty means every floor holds. A floor whose
/// metric was not measured is a failure too, so silently dropping a figure from the
/// bench cannot fade a regression gate out.
pub fn check_floors(metrics: &[(String, f64)], baselines: &Json) -> Result<Vec<String>, String> {
    let pairs = baselines
        .as_object()
        .ok_or("baselines.json must be a flat JSON object of metric -> floor")?;
    let mut failures = Vec::new();
    for (name, floor) in pairs {
        let floor = floor
            .as_f64()
            .ok_or_else(|| format!("baseline '{name}' is not a number"))?;
        match metrics.iter().find(|(k, _)| k == name) {
            None => failures.push(format!("metric '{name}' was not measured (floor {floor})")),
            Some((_, value)) if *value < floor => failures.push(format!(
                "metric '{name}' regressed: {value:.4} < floor {floor:.4}"
            )),
            Some(_) => {}
        }
    }
    Ok(failures)
}

#[cfg(test)]
mod tests {
    use super::*;
    use piccolo::json::parse;

    fn pt(label: &str, value: f64) -> Point {
        Point {
            label: label.to_string(),
            value,
        }
    }

    #[test]
    fn fig10_metric_is_the_gm_row() {
        let points = [pt("BFS/SW/Piccolo", 3.0), pt("GM/Piccolo", 2.5)];
        let m = speedup_metrics("fig10", &points);
        assert_eq!(m, vec![("fig10/gm_piccolo".to_string(), 2.5)]);
    }

    #[test]
    fn fig20a_metric_excludes_enhanced_rows() {
        let points = [
            pt("PR/DDR4x4/Piccolo", 2.0),
            pt("PR/DDR4x4/Piccolo enhanced", 8.0),
        ];
        let m = speedup_metrics("fig20a", &points);
        assert_eq!(m.len(), 1);
        assert!((m[0].1 - 2.0).abs() < 1e-12);
    }

    #[test]
    fn figures_without_ratios_contribute_nothing() {
        assert!(speedup_metrics("table2", &[pt("SW/paper-edges", 1.0)]).is_empty());
        assert!(speedup_metrics("fig10", &[]).is_empty());
    }

    #[test]
    fn external_figure_tracks_both_traversal_orders() {
        let points = [
            pt("PR/web/VC/Piccolo", 2.0),
            pt("BFS/web/VC/Piccolo", 8.0),
            pt("PR/web/EC/Piccolo", 1.5),
            pt("PR/web/VC/Conventional", 1.0),
        ];
        let m = speedup_metrics("external", &points);
        assert_eq!(m.len(), 2);
        assert_eq!(m[0].0, "external/gm_vc_piccolo");
        assert!((m[0].1 - 4.0).abs() < 1e-12); // geomean(2, 8)
        assert_eq!(m[1], ("external/gm_ec_piccolo".to_string(), 1.5));
    }

    #[test]
    fn fig19a_tracks_both_traversal_orders() {
        let points = [
            pt("PR/TW/VC/Piccolo", 2.0),
            pt("PR/TW/EC/Piccolo", 1.5),
            pt("PR/TW/EC/Conventional", 0.5),
        ];
        let m = speedup_metrics("fig19a", &points);
        assert_eq!(
            m,
            vec![
                ("fig19a/gm_vc_piccolo".to_string(), 2.0),
                ("fig19a/gm_ec_piccolo".to_string(), 1.5),
            ]
        );
    }

    #[test]
    fn floors_pass_fail_and_catch_missing_metrics() {
        let baselines = parse(r#"{"fig10/gm_piccolo": 2.0, "fig09/gm_fim_speedup": 3.0}"#).unwrap();
        let ok = check_floors(
            &[
                ("fig10/gm_piccolo".to_string(), 2.4),
                ("fig09/gm_fim_speedup".to_string(), 3.5),
            ],
            &baselines,
        )
        .unwrap();
        assert!(ok.is_empty());
        let bad = check_floors(&[("fig10/gm_piccolo".to_string(), 1.5)], &baselines).unwrap();
        assert_eq!(bad.len(), 2, "{bad:?}"); // one regression + one missing metric
        assert!(check_floors(&[], &parse("[1,2]").unwrap()).is_err());
    }

    #[test]
    fn bench_json_roundtrips() {
        let doc = bench_json(
            2,
            4,
            &[FigureBench {
                name: "fig10".to_string(),
                title: "Fig. 10".to_string(),
                rows: 12,
                min_ms: 1.25,
                mean_ms: 1.5,
            }],
            &[("fig10/gm_piccolo".to_string(), 2.5)],
            &CampaignStats {
                figures: 1,
                sim_runs: 11,
                measure_units: 0,
                graphs_built: 1,
                builds_saved: 0,
                graphs_evicted: 1,
            },
        );
        let v = parse(doc.trim()).unwrap();
        assert_eq!(
            v.get("schema").and_then(Json::as_str),
            Some("piccolo-bench/v1")
        );
        assert_eq!(
            v.get("campaign")
                .and_then(|c| c.get("graphs_built"))
                .and_then(Json::as_f64),
            Some(1.0)
        );
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("fig10/gm_piccolo"))
                .and_then(Json::as_f64),
            Some(2.5)
        );
        assert_eq!(
            v.get("figures").unwrap().as_array().unwrap()[0]
                .get("rows")
                .and_then(Json::as_f64),
            Some(12.0)
        );
    }
}
