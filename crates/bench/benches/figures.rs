//! Benchmarks: one (small-scale) benchmark per paper figure/table.
//!
//! The reproduction container has no access to crates.io, so instead of Criterion this is
//! a hand-rolled harness (`harness = false` in `Cargo.toml`): each figure's
//! [`ExperimentSpec`] runs through a [`SweepRunner`] at a tiny scale for a few timed
//! samples, and the harness prints min/mean wall-clock per figure. The `repro` binary
//! runs the same specs at full reproduction scale.
//!
//! Besides timing, the harness extracts the deterministic Piccolo-vs-baseline speedup
//! metrics from each figure's rows (see `piccolo_bench::speedup_metrics`), can emit
//! everything as `BENCH.json`, and can gate on the checked-in regression floors:
//!
//! ```text
//! cargo bench                                   # all figures, 5 samples each
//! cargo bench -- fig10                          # filter by name substring
//! cargo bench -- --quick --jobs 2               # 2 samples, 2 workers
//! cargo bench -- --intra-jobs 4                 # 4 threads inside each simulation
//! cargo bench -- --json BENCH.json --check crates/bench/baselines.json
//! cargo bench -- --external web=web.tsv        # bench a real graph (external figure)
//! ```
//!
//! (`--check` exits non-zero if any tracked speedup falls below its floor; CI's
//! bench-smoke job runs exactly that. `--external NAME=PATH`, repeatable, loads real
//! graphs through the `piccolo-io` snapshot cache and appends the `external` figure —
//! PR+BFS on both engines — so external graphs get `BENCH.json` rows and their
//! `external/gm_{vc,ec}_piccolo` metrics can carry `baselines.json` floors.)
//!
//! Besides the hand-set floors, `--check` ratchets against the best committed values
//! in the sibling `trajectory.json`: deterministic speedup metrics must never fall
//! below the best the model has achieved. `--allow-regression` downgrades ratchet
//! failures to warnings (static floors stay hard); `--update-ratchet` writes improved
//! bests back to the file.
//!
//! `--intra-jobs N` (0 = all cores) splits each simulation's interior across `N`
//! worker threads (`docs/parallelism.md`); rows and metrics are byte-identical for
//! every `N`, and with `N > 1` the harness times one large unit serial-vs-parallel
//! and records the wall-clock speedup in `BENCH.json`'s `intra` section.
//!
//! Diagnostics go through the `piccolo-obs` stderr sink; `--log-level quiet` (or
//! `error`/`warn`/`info`/`debug`) controls them (`docs/observability.md`). Tables and
//! check verdicts stay on stdout. `--events PATH` (optionally capped with
//! `--events-max-bytes N`) streams the harness's span tree — a `bench` root,
//! one `bench_figure` span per timing loop, `bench_intra` for the intra-jobs
//! comparison, plus the campaign/unit spans inside each sample — as the same
//! checksummed `piccolo-events/v1` log `repro` writes; `graphtool events-check`
//! validates it. Common flags are the shared driver surface
//! ([`piccolo_bench::cli`]); only `--json`/`--check`/`--allow-regression`/
//! `--update-ratchet` are the harness's own.

#![forbid(unsafe_code)]

use piccolo::experiments::{self, Scale};
use piccolo::sweep::{effective_unit_jobs, ExperimentSpec, SweepRunner};
use piccolo_algo::Algorithm;
use piccolo_bench::cli::{CliParser, CommonOpts, FlagSet};
use piccolo_bench::{
    bench_json, check_floors, check_trajectory, speedup_metrics, updated_trajectory, FigureBench,
    IntraBench,
};
use piccolo_graph::Dataset;
use piccolo_obs as obs;
use std::path::Path;
use std::time::{Duration, Instant};

fn tiny() -> Scale {
    Scale {
        scale_shift: 13,
        seed: 7,
        max_iterations: 2,
    }
}

/// The benched figure set: every spec at a tiny scale with one dataset/algorithm.
fn bench_specs() -> Vec<ExperimentSpec> {
    let ds = [Dataset::Sinaweibo];
    let algs = [Algorithm::Bfs];
    vec![
        experiments::fig03_spec(tiny(), &ds),
        experiments::fig09_spec(),
        experiments::fig10_spec(tiny(), &ds, &algs),
        experiments::fig11_spec(tiny(), &ds, &algs),
        experiments::fig12_spec(tiny(), &ds, &algs),
        experiments::fig13_spec(tiny(), &ds, &algs),
        experiments::fig14_spec(tiny(), &ds, &algs),
        experiments::fig15_spec(tiny(), Dataset::Sinaweibo, &algs),
        experiments::fig16_spec(tiny(), Dataset::Sinaweibo, &algs),
        experiments::fig17_spec(tiny(), Dataset::Sinaweibo, &algs),
        experiments::fig18_spec(tiny()),
        experiments::fig19a_spec(tiny(), &ds),
        experiments::fig19b_spec(5_000),
        experiments::fig20a_spec(tiny(), Dataset::Sinaweibo, &algs),
        experiments::fig20b_spec(tiny(), &ds),
        experiments::table2_spec(tiny()),
        experiments::area_spec(),
    ]
}

/// Times `f` for `samples` measured runs; returns (min, mean).
fn time_runs(samples: u32, mut f: impl FnMut()) -> (Duration, Duration) {
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        min = min.min(dt);
        total += dt;
    }
    (min, total / samples.max(1))
}

/// The common flags the harness accepts — the shared driver surface minus the
/// output/progress knobs it replaces with `--json`.
fn flags() -> FlagSet {
    FlagSet {
        scale: true,
        jobs: true,
        intra_jobs: true,
        external: true,
        snapshot_dir: true,
        events: true,
        log_level: true,
        ..FlagSet::default()
    }
}

fn parser() -> CliParser {
    CliParser::new(
        "bench",
        format!(
            "cargo bench -- [filter ...] {} [--json PATH] [--check PATH] \
             [--allow-regression] [--update-ratchet]",
            flags().usage_fragment()
        ),
    )
}

/// Resolves an input path against the cwd, the bench crate and the workspace root, in
/// that order — `cargo bench` runs this binary with cwd = `crates/bench`, but CI and
/// humans pass workspace-root-relative paths like `crates/bench/baselines.json`.
fn resolve_input(path: &str) -> std::path::PathBuf {
    let direct = std::path::PathBuf::from(path);
    if direct.exists() || direct.is_absolute() {
        return direct;
    }
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    for base in [manifest.to_path_buf(), manifest.join("../..")] {
        let candidate = base.join(path);
        if candidate.exists() {
            return candidate;
        }
    }
    direct
}

fn main() {
    obs::init_stderr(obs::LevelFilter::Info);
    let cli = parser();
    let fail = |msg: &str| -> ! { cli.fail(msg) };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = CommonOpts::new(flags());
    opts.jobs = 1; // timing defaults to the sequential reference path
    let mut filter: Vec<String> = Vec::new();
    let mut json_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut allow_regression = false;
    let mut update_ratchet = false;

    let mut it = args.iter().peekable();
    while let Some(arg) = it.next() {
        if opts.accept(arg, &mut it, &cli) {
            continue;
        }
        match arg.as_str() {
            "--allow-regression" => allow_regression = true,
            "--update-ratchet" => update_ratchet = true,
            "--json" => json_path = Some(cli.value("--json", &mut it).to_string()),
            "--check" => check_path = Some(cli.value("--check", &mut it).to_string()),
            // `cargo bench` passes --bench through to harness = false benches.
            "--bench" => {}
            other if other.starts_with("--") => cli.unknown_flag(other),
            other => filter.push(other.to_string()),
        }
    }

    // The events stream (`--events`, optionally rotation-capped): the same
    // checksummed `piccolo-events/v1` log as `repro`, so a coordinator-driven
    // bench run streams live per-worker spans. Attached before the warmup
    // campaign so the log covers every timing loop.
    opts.attach_sinks(&cli);
    let (quick, externals, snapshot_dir) = (
        opts.quick,
        opts.externals.clone(),
        opts.snapshot_dir.clone(),
    );

    let samples = if quick { 2 } else { 5 };
    // Split the thread budget between unit-level workers and each simulation's
    // interior; every split yields byte-identical rows (docs/parallelism.md).
    piccolo::set_intra_jobs(opts.intra_jobs);
    let intra = piccolo::intra_jobs();
    let runner = SweepRunner::new(effective_unit_jobs(opts.jobs, intra));
    let mut benched: Vec<FigureBench> = Vec::new();
    let mut metrics: Vec<(String, f64)> = Vec::new();

    // External graphs join the bench set as the `external` figure (PR+BFS, both
    // engines, via `experiments::external_spec`), subject to the same name filter —
    // `cargo bench -- --external web=web.tsv external` benches only the real graph.
    // Anchor a relative --snapshot-dir at the workspace root (not the cwd cargo bench
    // sets, crates/bench), so `repro --snapshot-dir snaps` and the bench share a cache.
    let snapshot_dir = match snapshot_dir {
        Some(dir) if dir.is_relative() => Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join(dir),
        Some(dir) => dir,
        None => piccolo_io::default_snapshot_dir(),
    };
    // Skip the (potentially huge) load entirely when the name filter would drop the
    // external figure anyway — no point parsing gigabytes to discard the spec.
    let wants_external =
        filter.is_empty() || filter.iter().any(|p| "external".contains(p.as_str()));
    let external_datasets = if wants_external {
        // `cargo bench` runs with cwd = crates/bench; resolve graph paths like
        // `--check` does (cwd, then the bench crate, then the workspace root).
        let resolved: Vec<(String, std::path::PathBuf)> = externals
            .iter()
            .map(|(name, path)| (name.clone(), resolve_input(path)))
            .collect();
        piccolo_bench::load_externals(&resolved, &snapshot_dir).unwrap_or_else(|e| fail(&e))
    } else {
        Vec::new()
    };
    let mut all_specs = bench_specs();
    if !external_datasets.is_empty() {
        all_specs.push(experiments::external_spec(tiny(), &external_datasets));
    }
    let specs: Vec<ExperimentSpec> = all_specs
        .into_iter()
        .filter(|spec| filter.is_empty() || filter.iter().any(|p| spec.name().contains(p.as_str())))
        .collect();

    // The harness's own span tree (visible with --events): one `bench` root over
    // the whole run, one `bench_figure` span per figure's timing loop. The campaign
    // and unit spans inside stay balanced per sample, so `graphtool events-check`
    // passes on a bench-produced log exactly as on a repro-produced one.
    let bench_span = obs::span(
        "bench",
        vec![
            ("samples", (samples as u64).into()),
            ("jobs", (runner.jobs() as u64).into()),
            ("intra_jobs", (intra as u64).into()),
        ],
    );

    // One campaign over every selected figure doubles as warmup and row capture for the
    // speedup metrics: each distinct graph is built exactly once across all figures.
    let campaign = runner.run_campaign(&specs);

    println!("{:<28} {:>12} {:>12}", "benchmark", "min", "mean");
    for (spec, figure) in specs.iter().zip(&campaign.figures) {
        // Timed samples still run each figure standalone (a campaign of one), so
        // per-figure wall-clock stays comparable across history.
        let figure_span = obs::span_with_parent(
            "bench_figure",
            bench_span.id(),
            vec![("figure", spec.name().into())],
        );
        let (min, mean) = time_runs(samples, || {
            runner.run(spec);
        });
        figure_span.close(vec![
            ("min_ns", (min.as_nanos() as u64).into()),
            ("mean_ns", (mean.as_nanos() as u64).into()),
        ]);
        println!(
            "{:<28} {:>10.3}ms {:>10.3}ms",
            spec.name(),
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3
        );
        metrics.extend(speedup_metrics(spec.name(), &figure.points));
        benched.push(FigureBench {
            name: spec.name().to_string(),
            title: spec.title().to_string(),
            rows: figure.points.len(),
            min_ms: min.as_secs_f64() * 1e3,
            mean_ms: mean.as_secs_f64() * 1e3,
        });
    }
    let stats = campaign.stats;
    println!(
        "campaign capture: {} distinct graph(s) built once, {} build(s) saved vs per-figure scheduling; \
         phases: {} scatter / {} apply DRAM clock(s)",
        stats.graphs_built, stats.builds_saved, stats.scatter_mem_clocks, stats.apply_mem_clocks
    );

    // With --intra-jobs > 1, time one large simulation unit with its interior serial
    // and then split across the intra workers — the wall-clock speedup the two-level
    // thread model buys on a single unit (recorded in BENCH.json, never gated on).
    let intra_bench = if intra > 1 {
        let intra_span = obs::span_with_parent(
            "bench_intra",
            bench_span.id(),
            vec![("jobs", (intra as u64).into())],
        );
        let g = Dataset::Sinaweibo.build(9, 7);
        let sim = piccolo::Simulation::new(piccolo::SystemKind::Piccolo)
            .configure(|c| c.with_max_iterations(3));
        let pr = piccolo_algo::PageRank::default();
        piccolo::set_intra_jobs(1);
        let (serial, _) = time_runs(samples, || {
            sim.run(&g, &pr);
        });
        piccolo::set_intra_jobs(intra);
        let (parallel, _) = time_runs(samples, || {
            sim.run(&g, &pr);
        });
        let bench = IntraBench {
            jobs: intra,
            serial_ns: serial.as_nanos() as u64,
            parallel_ns: parallel.as_nanos() as u64,
        };
        println!(
            "intra speedup (1 large unit): {} thread(s), serial {:.1} ms, parallel {:.1} ms, {:.2}x",
            bench.jobs,
            bench.serial_ns as f64 / 1e6,
            bench.parallel_ns as f64 / 1e6,
            bench.speedup()
        );
        intra_span.close(vec![
            ("serial_ns", bench.serial_ns.into()),
            ("parallel_ns", bench.parallel_ns.into()),
        ]);
        Some(bench)
    } else {
        None
    };
    bench_span.close(vec![("figures", (benched.len() as u64).into())]);

    if !metrics.is_empty() {
        println!();
        println!("{:<28} {:>12}", "metric", "value");
        for (name, value) in &metrics {
            println!("{name:<28} {value:>12.4}");
        }
    }

    if let Some(path) = &json_path {
        let doc = bench_json(
            samples,
            runner.jobs(),
            &benched,
            &metrics,
            &stats,
            intra_bench.as_ref(),
        );
        if let Err(e) = std::fs::write(path, doc) {
            fail(&format!("cannot write {path}: {e}"));
        }
        obs::info(format!("wrote {path}"));
    }

    if let Some(path) = &check_path {
        let resolved = resolve_input(path);
        let text = std::fs::read_to_string(&resolved)
            .unwrap_or_else(|e| fail(&format!("cannot read {}: {e}", resolved.display())));
        let mut baselines = piccolo::json::parse(&text)
            .unwrap_or_else(|e| fail(&format!("cannot parse {path}: {e}")));
        // A name filter skips figures entirely; their floors must not fail as "not
        // measured". Scope the check to the figures that actually ran (metric keys are
        // "<figure>/<metric>"). The unfiltered CI run still checks every floor.
        if !filter.is_empty() {
            if let piccolo::json::Json::Obj(pairs) = &mut baselines {
                pairs.retain(|(key, _)| {
                    benched
                        .iter()
                        .any(|f| key.starts_with(&format!("{}/", f.name)))
                });
            }
        }
        let failures = check_floors(&metrics, &baselines)
            .unwrap_or_else(|e| fail(&format!("bad baselines file {path}: {e}")));
        if failures.is_empty() {
            println!(
                "\nall {} regression floors hold",
                baselines.as_object().map(<[_]>::len).unwrap_or(0)
            );
        } else {
            obs::error(format!("speedup regression(s) against {path}:"));
            for f in &failures {
                obs::error(format!("  {f}"));
            }
            obs::flush_sinks();
            std::process::exit(1);
        }

        // Trajectory ratchet: the sibling trajectory.json carries the best committed
        // value of every tracked metric. Static floors above are the hard safety
        // net; the ratchet additionally refuses silent give-back of achieved model
        // quality (--allow-regression downgrades it to a warning, --update-ratchet
        // commits improvements).
        let trajectory_path = resolved.with_file_name("trajectory.json");
        if trajectory_path.exists() {
            let text = std::fs::read_to_string(&trajectory_path).unwrap_or_else(|e| {
                fail(&format!("cannot read {}: {e}", trajectory_path.display()))
            });
            let full = piccolo::json::parse(&text).unwrap_or_else(|e| {
                fail(&format!("cannot parse {}: {e}", trajectory_path.display()))
            });
            // Scope to the figures that ran, like the floors above.
            let mut trajectory = full.clone();
            if !filter.is_empty() {
                if let piccolo::json::Json::Obj(pairs) = &mut trajectory {
                    pairs.retain(|(key, _)| {
                        benched
                            .iter()
                            .any(|f| key.starts_with(&format!("{}/", f.name)))
                    });
                }
            }
            let (failures, improved) =
                check_trajectory(&metrics, &trajectory).unwrap_or_else(|e| {
                    fail(&format!(
                        "bad trajectory file {}: {e}",
                        trajectory_path.display()
                    ))
                });
            if failures.is_empty() {
                println!(
                    "trajectory ratchet holds ({} best value(s))",
                    trajectory.as_object().map(<[_]>::len).unwrap_or(0)
                );
            } else {
                let head = format!(
                    "trajectory regression(s) against {}:",
                    trajectory_path.display()
                );
                if allow_regression {
                    obs::warn(head);
                    for f in &failures {
                        obs::warn(format!("  {f}"));
                    }
                    obs::warn("continuing despite trajectory regressions (--allow-regression)");
                } else {
                    obs::error(head);
                    for f in &failures {
                        obs::error(format!("  {f}"));
                    }
                    obs::error("re-run with --allow-regression to downgrade these to warnings");
                    obs::flush_sinks();
                    std::process::exit(1);
                }
            }
            if update_ratchet && !improved.is_empty() {
                // Update against the unfiltered file so a name filter can never drop
                // other figures' committed bests.
                let mut doc = updated_trajectory(&metrics, &full).to_string();
                doc.push('\n');
                if let Err(e) = std::fs::write(&trajectory_path, doc) {
                    fail(&format!("cannot write {}: {e}", trajectory_path.display()));
                }
                println!(
                    "ratcheted {} metric(s) in {}",
                    improved.len(),
                    trajectory_path.display()
                );
            }
        }
    }
    obs::flush_sinks();
}
