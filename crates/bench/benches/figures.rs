//! Criterion benchmarks: one (small-scale) benchmark per paper figure/table.
//!
//! Each benchmark runs the corresponding experiment driver from `piccolo::experiments`
//! at `Scale::quick()` (tiny stand-in graphs) so `cargo bench --workspace` finishes in
//! minutes; the `repro` binary runs the same drivers at full reproduction scale and
//! prints the series the paper reports.

use criterion::{criterion_group, criterion_main, Criterion};
use piccolo::experiments::{self, Scale};
use piccolo_algo::Algorithm;
use piccolo_graph::Dataset;

fn tiny() -> Scale {
    Scale { scale_shift: 15, seed: 7, max_iterations: 2 }
}

fn bench_figures(c: &mut Criterion) {
    let ds = [Dataset::Sinaweibo];
    let algs = [Algorithm::Bfs];
    let mut g = c.benchmark_group("figures");
    g.sample_size(10);
    g.bench_function("fig03_motivation", |b| b.iter(|| experiments::fig03(tiny(), &ds)));
    g.bench_function("fig09_microbenchmark", |b| b.iter(experiments::fig09));
    g.bench_function("fig10_overall_speedup", |b| b.iter(|| experiments::fig10(tiny(), &ds, &algs)));
    g.bench_function("fig11_cache_designs", |b| b.iter(|| experiments::fig11(tiny(), &ds, &algs)));
    g.bench_function("fig12_memory_access", |b| b.iter(|| experiments::fig12(tiny(), &ds, &algs)));
    g.bench_function("fig13_bandwidth", |b| b.iter(|| experiments::fig13(tiny(), &ds, &algs)));
    g.bench_function("fig14_energy", |b| b.iter(|| experiments::fig14(tiny(), &ds, &algs)));
    g.bench_function("fig15_memory_types", |b| b.iter(|| experiments::fig15(tiny(), Dataset::Sinaweibo, &algs)));
    g.bench_function("fig16_channels_ranks", |b| b.iter(|| experiments::fig16(tiny(), Dataset::Sinaweibo, &algs)));
    g.bench_function("fig17_tile_size", |b| b.iter(|| experiments::fig17(tiny(), Dataset::Sinaweibo, &algs)));
    g.bench_function("fig18_synthetic_graphs", |b| b.iter(|| experiments::fig18(tiny())));
    g.bench_function("fig19a_edge_centric", |b| b.iter(|| experiments::fig19a(tiny(), &ds)));
    g.bench_function("fig19b_olap", |b| b.iter(|| experiments::fig19b(5_000)));
    g.bench_function("fig20a_enhanced_designs", |b| b.iter(|| experiments::fig20a(tiny(), Dataset::Sinaweibo, &algs)));
    g.bench_function("fig20b_prefetch_off", |b| b.iter(|| experiments::fig20b(tiny(), &ds)));
    g.bench_function("table2_datasets", |b| b.iter(|| experiments::table2(tiny())));
    g.bench_function("area_report", |b| b.iter(piccolo::area_report));
    g.finish();
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
