//! Benchmarks: one (small-scale) benchmark per paper figure/table.
//!
//! The reproduction container has no access to crates.io, so instead of Criterion this is
//! a hand-rolled harness (`harness = false` in `Cargo.toml`): each figure's experiment
//! driver from `piccolo::experiments` runs a few timed iterations at a tiny scale and the
//! bench prints min/mean wall-clock per driver. The `repro` binary runs the same drivers
//! at full reproduction scale and prints the series the paper reports.
//!
//! Usage: `cargo bench` (optionally `cargo bench -- fig10` to filter by substring).

use piccolo::experiments::{self, Scale};
use piccolo_algo::Algorithm;
use piccolo_graph::Dataset;
use std::time::{Duration, Instant};

fn tiny() -> Scale {
    Scale {
        scale_shift: 15,
        seed: 7,
        max_iterations: 2,
    }
}

/// Times `f` for a warmup run plus `samples` measured runs; returns (min, mean).
fn time_runs(samples: u32, mut f: impl FnMut()) -> (Duration, Duration) {
    f(); // warmup
    let mut min = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..samples {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        min = min.min(dt);
        total += dt;
    }
    (min, total / samples)
}

type BenchFn = Box<dyn FnMut()>;

fn main() {
    let filter: Vec<String> = std::env::args()
        .skip(1)
        .filter(|a| !a.starts_with("--"))
        .collect();
    let ds = [Dataset::Sinaweibo];
    let algs = [Algorithm::Bfs];

    let benches: Vec<(&str, BenchFn)> = vec![
        (
            "fig03_motivation",
            Box::new(move || drop(experiments::fig03(tiny(), &ds))),
        ),
        (
            "fig09_microbenchmark",
            Box::new(move || drop(experiments::fig09())),
        ),
        (
            "fig10_overall_speedup",
            Box::new(move || drop(experiments::fig10(tiny(), &ds, &algs))),
        ),
        (
            "fig11_cache_designs",
            Box::new(move || drop(experiments::fig11(tiny(), &ds, &algs))),
        ),
        (
            "fig12_memory_access",
            Box::new(move || drop(experiments::fig12(tiny(), &ds, &algs))),
        ),
        (
            "fig13_bandwidth",
            Box::new(move || drop(experiments::fig13(tiny(), &ds, &algs))),
        ),
        (
            "fig14_energy",
            Box::new(move || drop(experiments::fig14(tiny(), &ds, &algs))),
        ),
        (
            "fig15_memory_types",
            Box::new(move || drop(experiments::fig15(tiny(), Dataset::Sinaweibo, &algs))),
        ),
        (
            "fig16_channels_ranks",
            Box::new(move || drop(experiments::fig16(tiny(), Dataset::Sinaweibo, &algs))),
        ),
        (
            "fig17_tile_size",
            Box::new(move || drop(experiments::fig17(tiny(), Dataset::Sinaweibo, &algs))),
        ),
        (
            "fig18_synthetic_graphs",
            Box::new(move || drop(experiments::fig18(tiny()))),
        ),
        (
            "fig19a_edge_centric",
            Box::new(move || drop(experiments::fig19a(tiny(), &ds))),
        ),
        (
            "fig19b_olap",
            Box::new(move || drop(experiments::fig19b(5_000))),
        ),
        (
            "fig20a_enhanced_designs",
            Box::new(move || drop(experiments::fig20a(tiny(), Dataset::Sinaweibo, &algs))),
        ),
        (
            "fig20b_prefetch_off",
            Box::new(move || drop(experiments::fig20b(tiny(), &ds))),
        ),
        (
            "table2_datasets",
            Box::new(move || drop(experiments::table2(tiny()))),
        ),
        (
            "area_report",
            Box::new(move || {
                let _ = piccolo::area_report();
            }),
        ),
    ];

    println!("{:<28} {:>12} {:>12}", "benchmark", "min", "mean");
    for (name, mut f) in benches {
        if !filter.is_empty() && !filter.iter().any(|p| name.contains(p.as_str())) {
            continue;
        }
        let (min, mean) = time_runs(5, &mut *f);
        println!(
            "{name:<28} {:>10.3}ms {:>10.3}ms",
            min.as_secs_f64() * 1e3,
            mean.as_secs_f64() * 1e3
        );
    }
}
