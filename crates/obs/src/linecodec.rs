//! Checksummed single-line records — the shared line codec.
//!
//! One format serves two consumers: the campaign run journal
//! (`piccolo_io::journal` re-exports this module's functions, so journals keep
//! their historical on-disk bytes) and the `piccolo-events/v1` event log
//! written by [`crate::sink::JsonlSink`]:
//!
//! ```text
//! <16 lowercase hex digits of FNV-1a-64 over the payload bytes> <payload>\n
//! ```
//!
//! The payload is an opaque single-line string (both consumers store compact
//! JSON). A reader verifies each line's checksum and **ignores** lines that
//! fail — a torn final line from a killed process, or a flipped byte anywhere,
//! costs exactly the entries it touches, never the whole file. Appends are
//! atomic per line at the OS level for the short lines this pipeline writes
//! (`O_APPEND` + one `write`).

use std::io::{BufRead, Write};
use std::path::Path;

/// Width of the hex checksum prefix (FNV-1a 64 in lowercase hex).
const CHECKSUM_HEX: usize = 16;

/// FNV-1a 64-bit over `bytes` — the same function `piccolo_io::hash` uses for
/// `.pcsr` section checksums (pinned against it by `crates/io` tests).
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Encodes one line (without trailing newline): checksum prefix + payload.
///
/// # Panics
///
/// Panics if `payload` contains a newline — an entry is one line by contract
/// (both the campaign layer and the event sink write compact JSON, which never
/// contains raw newlines).
#[must_use]
pub fn encode_line(payload: &str) -> String {
    assert!(
        !payload.contains('\n') && !payload.contains('\r'),
        "journal payloads must be single-line"
    );
    format!("{:016x} {payload}", fnv64(payload.as_bytes()))
}

/// Decodes one line: returns the payload if the checksum verifies, `None` for
/// anything malformed (wrong prefix length, bad hex, checksum mismatch,
/// missing separator). Trailing `\n`/`\r\n` is tolerated.
#[must_use]
pub fn decode_line(line: &str) -> Option<&str> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let line = line.strip_suffix('\r').unwrap_or(line);
    if line.len() < CHECKSUM_HEX + 1 || line.as_bytes()[CHECKSUM_HEX] != b' ' {
        return None;
    }
    let (hex, rest) = line.split_at(CHECKSUM_HEX);
    let payload = &rest[1..];
    // The encoder emits lowercase hex only; reject uppercase so a case-flipped
    // checksum byte (a single-bit flip on an ASCII letter) cannot still verify.
    if !hex
        .bytes()
        .all(|b| b.is_ascii_digit() || (b'a'..=b'f').contains(&b))
    {
        return None;
    }
    let stored = u64::from_str_radix(hex, 16).ok()?;
    (stored == fnv64(payload.as_bytes())).then_some(payload)
}

/// Appends one encoded line (payload + checksum + `\n`) to `out` in a single write.
///
/// # Errors
///
/// Propagates the underlying I/O error from the single `write_all`.
pub fn append_line(out: &mut impl Write, payload: &str) -> std::io::Result<()> {
    let mut line = encode_line(payload);
    line.push('\n');
    out.write_all(line.as_bytes())
}

/// Result of scanning a checksummed-line file: the payloads whose checksums
/// verified, in file order, plus the number of lines dropped as corrupt.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalLines {
    /// Verified payloads, in file order.
    pub payloads: Vec<String>,
    /// Lines whose checksum (or framing) did not verify — ignored, never fatal.
    pub corrupt: usize,
}

/// Reads a checksummed-line file, verifying every line. Corrupt lines — a torn
/// final line from a killed writer, a checksum mismatch, or bytes that are not
/// valid UTF-8 (a flipped high bit must cost one line, never the whole file) —
/// are counted and skipped; empty lines are ignored outright.
///
/// # Errors
///
/// I/O errors (other than the caller-handled missing file) propagate.
pub fn read_lines(path: &Path) -> std::io::Result<JournalLines> {
    let file = std::fs::File::open(path)?;
    let mut reader = std::io::BufReader::new(file);
    let mut out = JournalLines::default();
    let mut raw = Vec::new();
    loop {
        raw.clear();
        if reader.read_until(b'\n', &mut raw)? == 0 {
            return Ok(out);
        }
        let Ok(line) = std::str::from_utf8(&raw) else {
            out.corrupt += 1;
            continue;
        };
        let line = line.trim_end_matches(['\n', '\r']);
        if line.is_empty() {
            continue;
        }
        match decode_line(line) {
            Some(payload) => out.payloads.push(payload.to_string()),
            None => out.corrupt += 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_and_reject() {
        let line = encode_line(r#"{"unit":3}"#);
        assert_eq!(decode_line(&line), Some(r#"{"unit":3}"#));
        assert_eq!(decode_line(&format!("{line}\n")), Some(r#"{"unit":3}"#));
        let mut bad = line.clone().into_bytes();
        bad[0] = if bad[0] == b'0' { b'1' } else { b'0' };
        assert_eq!(decode_line(std::str::from_utf8(&bad).unwrap()), None);
        let mut bad = line.into_bytes();
        *bad.last_mut().unwrap() ^= 1;
        assert_eq!(decode_line(std::str::from_utf8(&bad).unwrap()), None);
        assert_eq!(decode_line("not a journal line"), None);
        assert_eq!(decode_line(""), None);
        assert_eq!(decode_line("0123456789abcdef"), None);
    }

    #[test]
    #[should_panic(expected = "single-line")]
    fn multiline_payloads_are_rejected() {
        let _ = encode_line("a\nb");
    }

    #[test]
    fn read_lines_skips_corrupt_entries() {
        let dir = std::env::temp_dir().join(format!("piccolo-obs-lines-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("j.log");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            append_line(&mut f, "first").unwrap();
            f.write_all(b"garbage line\n").unwrap();
            append_line(&mut f, "second").unwrap();
            let mut flipped = encode_line("bitrot").into_bytes();
            flipped[20] |= 0x80;
            flipped.push(b'\n');
            f.write_all(&flipped).unwrap();
            append_line(&mut f, "third").unwrap();
            f.write_all(encode_line("torn").as_bytes().split_at(8).0)
                .unwrap();
        }
        let lines = read_lines(&path).unwrap();
        assert_eq!(lines.payloads, ["first", "second", "third"]);
        assert_eq!(lines.corrupt, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
