//! The process-wide metrics registry (`piccolo-metrics/v1`).
//!
//! Typed counters, gauges and histograms keyed by name, aggregated per
//! campaign (per-*unit* values travel as fields on `unit` span events — see
//! `docs/observability.md`). Naming convention, enforced by tests rather than
//! types:
//!
//! * `sim/…` — deterministic quantities folded from simulation results
//!   (DRAM transactions, cache hits). **u64 counters only**, so aggregation is
//!   exact and order-independent: the values are identical for a fixed seed at
//!   any `--jobs` split.
//! * `campaign/…` — deterministic scheduler counts (units, builds, evictions,
//!   journal lines replayed).
//! * `io/…` — host-environment-dependent but clock-free counts
//!   (snapshot cache hits/misses).
//! * `host/…` — wall-clock and memory measurements (gauges, histograms).
//!   Nondeterministic by nature; never compared across runs.

use crate::json::{self, Val};
use std::collections::BTreeMap;
use std::sync::{Mutex, PoisonError};

/// One exported metric value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricValue {
    /// A monotonically increasing exact count.
    Counter(u64),
    /// A last-write-wins measurement.
    Gauge(f64),
    /// An online summary of observed samples.
    Histogram {
        /// Number of samples observed.
        count: u64,
        /// Sum of all samples (saturating).
        sum: u64,
        /// Smallest sample.
        min: u64,
        /// Largest sample.
        max: u64,
    },
}

static METRICS: Mutex<BTreeMap<String, MetricValue>> = Mutex::new(BTreeMap::new());

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<String, MetricValue>) -> R) -> R {
    f(&mut METRICS.lock().unwrap_or_else(PoisonError::into_inner))
}

/// Adds `delta` to the counter `name` (creating it at zero).
///
/// A name's kind is fixed by its first writer; a kind-mismatched update
/// replaces the metric wholesale (callers keep kinds straight by the naming
/// convention above).
pub fn counter_add(name: &str, delta: u64) {
    with_registry(|m| match m.get_mut(name) {
        Some(MetricValue::Counter(v)) => *v = v.saturating_add(delta),
        Some(other) => *other = MetricValue::Counter(delta),
        None => {
            m.insert(name.to_string(), MetricValue::Counter(delta));
        }
    });
}

/// Sets the gauge `name` to `value` (last write wins).
pub fn gauge_set(name: &str, value: f64) {
    with_registry(|m| {
        m.insert(name.to_string(), MetricValue::Gauge(value));
    });
}

/// Records one `sample` into the histogram `name`.
pub fn observe(name: &str, sample: u64) {
    with_registry(|m| match m.get_mut(name) {
        Some(MetricValue::Histogram {
            count,
            sum,
            min,
            max,
        }) => {
            *count += 1;
            *sum = sum.saturating_add(sample);
            *min = (*min).min(sample);
            *max = (*max).max(sample);
        }
        Some(other) => {
            *other = MetricValue::Histogram {
                count: 1,
                sum: sample,
                min: sample,
                max: sample,
            };
        }
        None => {
            m.insert(
                name.to_string(),
                MetricValue::Histogram {
                    count: 1,
                    sum: sample,
                    min: sample,
                    max: sample,
                },
            );
        }
    });
}

/// Clears the registry (campaign drivers call this once at startup so a
/// process running several campaigns — the bench harness — exports only the
/// final campaign's aggregates; tests use it for isolation).
pub fn reset_metrics() {
    with_registry(std::mem::take);
}

/// A sorted copy of the registry.
#[must_use]
pub fn metrics_snapshot() -> Vec<(String, MetricValue)> {
    with_registry(|m| m.iter().map(|(k, v)| (k.clone(), *v)).collect())
}

/// Renders the registry as a `piccolo-metrics/v1` document: counters under
/// `"counters"` (u64 as decimal strings — the lossless number codec), gauges
/// under `"gauges"` (JSON numbers) and histograms under `"histograms"`
/// (`count`/`sum`/`min`/`max`, u64 as strings). Keys are sorted, so the
/// document is deterministic for deterministic metric values.
#[must_use]
pub fn metrics_json() -> String {
    let snapshot = metrics_snapshot();
    let mut counters = Vec::new();
    let mut gauges = Vec::new();
    let mut histograms = Vec::new();
    for (name, value) in snapshot {
        match value {
            MetricValue::Counter(v) => counters.push((name, Val::Str(v.to_string()))),
            MetricValue::Gauge(v) => gauges.push((name, Val::Num(v))),
            MetricValue::Histogram {
                count,
                sum,
                min,
                max,
            } => histograms.push((
                name,
                Val::Obj(vec![
                    ("count".to_string(), Val::Str(count.to_string())),
                    ("sum".to_string(), Val::Str(sum.to_string())),
                    ("min".to_string(), Val::Str(min.to_string())),
                    ("max".to_string(), Val::Str(max.to_string())),
                ]),
            )),
        }
    }
    Val::Obj(vec![
        (
            "schema".to_string(),
            Val::Str(crate::METRICS_SCHEMA.to_string()),
        ),
        ("counters".to_string(), Val::Obj(counters)),
        ("gauges".to_string(), Val::Obj(gauges)),
        ("histograms".to_string(), Val::Obj(histograms)),
    ])
    .to_json()
}

/// Writes [`metrics_json`] (plus a trailing newline) to `path`.
///
/// # Errors
///
/// Propagates the underlying write error.
pub fn write_metrics_file(path: &std::path::Path) -> std::io::Result<()> {
    let mut doc = metrics_json();
    doc.push('\n');
    std::fs::write(path, doc)
}

/// Parses a `piccolo-metrics/v1` document back into metric values, for tests
/// and tooling. Returns `None` on a schema mismatch or malformed document.
#[must_use]
pub fn parse_metrics_json(text: &str) -> Option<Vec<(String, MetricValue)>> {
    let doc = json::Val::parse(text.trim_end()).ok()?;
    if doc.get("schema")?.as_str()? != crate::METRICS_SCHEMA {
        return None;
    }
    let mut out = Vec::new();
    if let Some(Val::Obj(fields)) = doc.get("counters") {
        for (name, v) in fields {
            out.push((name.clone(), MetricValue::Counter(v.as_u64()?)));
        }
    }
    if let Some(Val::Obj(fields)) = doc.get("gauges") {
        for (name, v) in fields {
            out.push((name.clone(), MetricValue::Gauge(v.as_num()?)));
        }
    }
    if let Some(Val::Obj(fields)) = doc.get("histograms") {
        for (name, h) in fields {
            out.push((
                name.clone(),
                MetricValue::Histogram {
                    count: h.get("count")?.as_u64()?,
                    sum: h.get("sum")?.as_u64()?,
                    min: h.get("min")?.as_u64()?,
                    max: h.get("max")?.as_u64()?,
                },
            ));
        }
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    // Metrics tests share the process-global registry with other obs tests;
    // the crate-wide TEST_LOCK in lib.rs serializes them.
    fn locked() -> std::sync::MutexGuard<'static, ()> {
        crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn counters_gauges_histograms_roundtrip_through_the_document() {
        let _guard = locked();
        reset_metrics();
        counter_add("sim/cache_hits", 2);
        counter_add("sim/cache_hits", 3);
        gauge_set("host/peak_rss_kb", 1024.0);
        observe("host/unit_ns", 10);
        observe("host/unit_ns", 30);
        let doc = metrics_json();
        assert!(doc.starts_with(r#"{"schema":"piccolo-metrics/v1""#));
        let parsed = parse_metrics_json(&doc).unwrap();
        assert_eq!(
            parsed,
            vec![
                ("sim/cache_hits".to_string(), MetricValue::Counter(5)),
                ("host/peak_rss_kb".to_string(), MetricValue::Gauge(1024.0)),
                (
                    "host/unit_ns".to_string(),
                    MetricValue::Histogram {
                        count: 2,
                        sum: 40,
                        min: 10,
                        max: 30
                    }
                ),
            ]
        );
        reset_metrics();
        assert!(metrics_snapshot().is_empty());
    }

    #[test]
    fn counter_aggregation_is_order_independent() {
        let _guard = locked();
        reset_metrics();
        // Exact u64 addition commutes: interleaving from worker threads in any
        // order yields the same totals — the basis of the `sim/*` determinism
        // guarantee.
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        counter_add("sim/edges", 7);
                    }
                });
            }
        });
        assert_eq!(
            metrics_snapshot(),
            vec![("sim/edges".to_string(), MetricValue::Counter(5600))]
        );
        reset_metrics();
    }
}
