//! A minimal JSON value, writer and parser for event payloads.
//!
//! `piccolo-obs` sits *below* `piccolo` in the crate graph (core depends on obs
//! so the campaign scheduler can emit spans), so it cannot use `piccolo::json`.
//! This is a deliberately small re-statement of the same conventions for the
//! flat records the event stream carries:
//!
//! * numbers follow `piccolo::json::write_number` semantics — integral values
//!   below 2^53 print without a fractional part, everything else uses Rust's
//!   shortest round-trip `{}` formatting, non-finite values become `null`;
//! * `u64` quantities that may exceed 2^53 (timestamps, durations, counters)
//!   are carried as decimal *strings*, the workspace's lossless number codec
//!   convention (see `docs/results-schema.md`).

use std::fmt::Write as _;

/// A parsed or to-be-written JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Val {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Val>),
    /// An object, in insertion order (duplicate keys keep the last value on
    /// lookup but are preserved in order when written back).
    Obj(Vec<(String, Val)>),
}

impl Val {
    /// Object field lookup (last occurrence wins, mirroring `piccolo::json`).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Val> {
        match self {
            Val::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Val::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    #[must_use]
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Val::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Reads a `u64` in either carrier: a decimal string (the lossless codec
    /// for values that may exceed 2^53) or a plain non-negative integral number.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Val::Str(s) => s.parse().ok(),
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Val::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < 9.0e15 => Some(*n as u64),
            _ => None,
        }
    }

    /// Serializes compactly (no whitespace), appending to `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Val::Null => out.push_str("null"),
            Val::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Val::Num(n) => write_number(out, *n),
            Val::Str(s) => write_string(out, s),
            Val::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Val::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(out, k);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serializes compactly into a fresh string.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Val, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing bytes at offset {}", p.pos));
        }
        Ok(v)
    }
}

/// Writes `n` following the workspace number convention: non-finite → `null`,
/// integral below 2^53 → no fractional part, otherwise shortest round-trip.
pub fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n == n.trunc() && n.abs() < 9.0e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

/// Writes `s` as a JSON string with the escapes the grammar requires.
pub fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at offset {}", b as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, v: Val) -> Result<Val, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at offset {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Val, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Val::Null),
            Some(b't') => self.literal("true", Val::Bool(true)),
            Some(b'f') => self.literal("false", Val::Bool(false)),
            Some(b'"') => self.string().map(Val::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("unexpected byte at offset {}", self.pos)),
        }
    }

    fn array(&mut self) -> Result<Val, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Val::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Val::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at offset {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Val, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Val::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Val::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at offset {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            // The scanned run is valid UTF-8: the input is a &str and the run
            // boundary bytes above are all ASCII.
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 in string at offset {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| {
                                    format!("truncated \\u escape at offset {}", self.pos)
                                })?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at offset {}", self.pos))?;
                            // Surrogates never appear in this writer's output;
                            // map them to the replacement character on read.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at offset {}", self.pos)),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Val, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii run");
        text.parse::<f64>()
            .map(Val::Num)
            .map_err(|_| format!("bad number at offset {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_compact_documents() {
        let doc = r#"{"a":1,"b":"x\ny","c":[true,null,-2.5],"d":{"k":"18446744073709551615"}}"#;
        let v = Val::parse(doc).unwrap();
        assert_eq!(v.to_json(), doc);
        assert_eq!(v.get("a").and_then(Val::as_num), Some(1.0));
        assert_eq!(v.get("b").and_then(Val::as_str), Some("x\ny"));
        assert_eq!(
            v.get("d").and_then(|d| d.get("k")).and_then(Val::as_u64),
            Some(u64::MAX)
        );
    }

    #[test]
    fn numbers_follow_the_workspace_convention() {
        let mut s = String::new();
        write_number(&mut s, 3.0);
        write_number(&mut s, f64::NAN);
        assert_eq!(s, "3null");
        let mut s = String::new();
        write_number(&mut s, 0.15);
        assert_eq!(s, "0.15");
        assert_eq!(Val::parse("0.15").unwrap(), Val::Num(0.15));
    }

    #[test]
    fn control_characters_escape_and_parse_back() {
        let v = Val::Str("a\u{1}b\"c\\d".to_string());
        let text = v.to_json();
        assert_eq!(text, "\"a\\u0001b\\\"c\\\\d\"");
        assert_eq!(Val::parse(&text).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Val::parse("{").is_err());
        assert!(Val::parse(r#"{"a":}"#).is_err());
        assert!(Val::parse("[1,2,]x").is_err());
        assert!(Val::parse("01a").is_err());
        assert!(Val::parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn u64_reads_both_carriers() {
        assert_eq!(Val::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Val::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Val::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Val::parse(r#""12""#).unwrap().as_u64(), Some(12));
    }
}
