//! The live `--progress` renderer.
//!
//! A [`Sink`] that folds campaign events into running totals — units done per
//! figure, active graph builds, evictions — and renders a one-line status to
//! stderr. The ETA comes from the campaign's own deterministic unit-cost
//! estimates (the `cost` fields on `campaign`/`unit` events), scaled by
//! observed wall-clock: `eta = elapsed * remaining_cost / done_cost`.
//!
//! On a TTY the line redraws in place (`\r`); otherwise (CI logs) full lines
//! are printed, throttled to one per second plus one per figure completion so
//! logs stay readable.

use crate::sink::Sink;
use crate::{Event, EventKind, Fields, Value};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::IsTerminal;
use std::sync::{Mutex, PoisonError};
use std::time::Instant;

fn field_u64(fields: &Fields, key: &str) -> Option<u64> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::U64(n) => Some(*n),
            _ => None,
        })
}

fn field_str<'a>(fields: &'a Fields, key: &str) -> Option<&'a str> {
    fields
        .iter()
        .find(|(k, _)| *k == key)
        .and_then(|(_, v)| match v {
            Value::Str(s) => Some(s.as_str()),
            _ => None,
        })
}

/// Folded progress state. Public for rendering tests; drivers only ever
/// construct the sink via [`crate::add_progress`].
#[derive(Debug, Default)]
pub struct ProgressState {
    units_total: u64,
    units_done: u64,
    cost_total: u64,
    cost_done: u64,
    builds_total: u64,
    builds_done: u64,
    builds_active: u64,
    evicted: u64,
    /// figure name → (done, total), insertion-ordered by plan order.
    figures: BTreeMap<String, (u64, u64)>,
}

impl ProgressState {
    /// Folds one event; returns whether the display should refresh eagerly
    /// (figure/build transitions) rather than waiting for the throttle.
    pub fn apply(&mut self, event: &Event) -> bool {
        match &event.kind {
            EventKind::Open { span, fields, .. } => match *span {
                "campaign" => {
                    self.units_total += field_u64(fields, "units").unwrap_or(0);
                    self.cost_total += field_u64(fields, "cost_total").unwrap_or(0);
                    self.builds_total += field_u64(fields, "builds").unwrap_or(0);
                    true
                }
                "graph_build" => {
                    self.builds_active += 1;
                    true
                }
                _ => false,
            },
            EventKind::Close { span, fields, .. } => match *span {
                "graph_build" => {
                    self.builds_active = self.builds_active.saturating_sub(1);
                    self.builds_done += 1;
                    true
                }
                "unit" => {
                    self.units_done += 1;
                    self.cost_done += field_u64(fields, "cost").unwrap_or(0);
                    if let Some(fig) = field_str(fields, "figure") {
                        let entry = self.figures.entry(fig.to_string()).or_insert((0, 0));
                        entry.0 += 1;
                        entry.0 >= entry.1
                    } else {
                        false
                    }
                }
                "campaign" => true,
                _ => false,
            },
            EventKind::Point { name, fields, .. } => match *name {
                "figure_plan" => {
                    if let Some(fig) = field_str(fields, "figure") {
                        let entry = self.figures.entry(fig.to_string()).or_insert((0, 0));
                        entry.1 += field_u64(fields, "units").unwrap_or(0);
                    }
                    false
                }
                "graph_evict" => {
                    self.evicted += 1;
                    false
                }
                _ => false,
            },
            EventKind::Log { .. } => false,
        }
    }

    /// Renders the one-line status. `eta_secs` is appended when `Some`.
    #[must_use]
    pub fn render(&self, eta_secs: Option<u64>) -> String {
        let mut line = format!("progress: {}/{} unit(s)", self.units_done, self.units_total);
        // Show the figures currently in flight (started, unfinished) — there
        // are only ever a handful at a time, however many the campaign has.
        let in_flight: Vec<String> = self
            .figures
            .iter()
            .filter(|(_, (done, total))| *done > 0 && done < total)
            .take(4)
            .map(|(name, (done, total))| format!("{name} {done}/{total}"))
            .collect();
        if !in_flight.is_empty() {
            let _ = write!(line, " [{}]", in_flight.join(", "));
        }
        if self.builds_total > 0 {
            let _ = write!(line, ", builds {}/{}", self.builds_done, self.builds_total);
            if self.builds_active > 0 {
                let _ = write!(line, " ({} active)", self.builds_active);
            }
        }
        if self.evicted > 0 {
            let _ = write!(line, ", {} evicted", self.evicted);
        }
        if let Some(eta) = eta_secs {
            let _ = write!(line, ", eta {eta}s");
        }
        line
    }

    /// The ETA in whole seconds given elapsed wall-clock, from the cost model.
    #[must_use]
    pub fn eta_secs(&self, elapsed_secs: f64) -> Option<u64> {
        if self.cost_done == 0 || self.cost_total <= self.cost_done {
            return None;
        }
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let eta = (elapsed_secs * (self.cost_total - self.cost_done) as f64 / self.cost_done as f64)
            .ceil() as u64;
        Some(eta)
    }

    /// Whether every planned unit has completed.
    #[must_use]
    pub fn finished(&self) -> bool {
        self.units_total > 0 && self.units_done >= self.units_total
    }
}

struct Inner {
    state: ProgressState,
    started: Option<Instant>,
    last_render: Option<Instant>,
    last_width: usize,
}

/// The `--progress` sink. See the module docs.
pub struct ProgressSink {
    inner: Mutex<Inner>,
    tty: bool,
}

impl std::fmt::Debug for ProgressSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressSink")
            .field("tty", &self.tty)
            .finish()
    }
}

impl ProgressSink {
    /// Creates the sink, detecting whether stderr is a TTY.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                state: ProgressState::default(),
                started: None,
                last_render: None,
                last_width: 0,
            }),
            tty: std::io::stderr().is_terminal(),
        }
    }
}

impl Default for ProgressSink {
    fn default() -> Self {
        Self::new()
    }
}

impl Sink for ProgressSink {
    fn emit(&self, event: &Event) {
        let mut inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
        let started = *inner.started.get_or_insert_with(Instant::now);
        let eager = inner.state.apply(event);
        let finished = inner.state.finished()
            && matches!(&event.kind, EventKind::Close { span, .. } if *span == "campaign");
        let due = inner
            .last_render
            .is_none_or(|t| t.elapsed().as_millis() >= if self.tty { 100 } else { 1000 });
        if !(eager || finished || due) {
            return;
        }
        let elapsed = started.elapsed().as_secs_f64();
        let eta = if finished {
            None
        } else {
            inner.state.eta_secs(elapsed)
        };
        let line = inner.state.render(eta);
        if self.tty {
            let width = line.len();
            eprint!("\r{line:<pad$}", pad = inner.last_width.max(width));
            inner.last_width = width;
            if finished {
                eprintln!();
            }
        } else {
            eprintln!("{line}");
        }
        inner.last_render = Some(Instant::now());
    }

    fn flush(&self) {
        if self.tty {
            let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            if inner.last_width > 0 && !inner.state.finished() {
                eprintln!();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EventKind;

    fn ev(kind: EventKind) -> Event {
        Event {
            seq: 0,
            t_ns: 0,
            kind,
        }
    }

    #[test]
    fn state_folds_a_campaign_and_estimates_eta() {
        let mut st = ProgressState::default();
        st.apply(&ev(EventKind::Open {
            span: "campaign",
            id: 1,
            parent: None,
            fields: vec![
                ("units", 4u64.into()),
                ("cost_total", 100u64.into()),
                ("builds", 2u64.into()),
            ],
        }));
        st.apply(&ev(EventKind::Point {
            name: "figure_plan",
            parent: Some(1),
            fields: vec![("figure", "fig10".into()), ("units", 4u64.into())],
        }));
        st.apply(&ev(EventKind::Open {
            span: "graph_build",
            id: 2,
            parent: Some(1),
            fields: vec![],
        }));
        assert_eq!(
            st.render(None),
            "progress: 0/4 unit(s), builds 0/2 (1 active)"
        );
        st.apply(&ev(EventKind::Close {
            span: "graph_build",
            id: 2,
            dur_ns: 5,
            fields: vec![],
        }));
        st.apply(&ev(EventKind::Close {
            span: "unit",
            id: 3,
            dur_ns: 5,
            fields: vec![("figure", "fig10".into()), ("cost", 25u64.into())],
        }));
        st.apply(&ev(EventKind::Point {
            name: "graph_evict",
            parent: Some(1),
            fields: vec![],
        }));
        // 25 of 100 cost units done in 1s → 3s remaining.
        assert_eq!(st.eta_secs(1.0), Some(3));
        assert_eq!(
            st.render(st.eta_secs(1.0)),
            "progress: 1/4 unit(s) [fig10 1/4], builds 1/2, 1 evicted, eta 3s"
        );
        assert!(!st.finished());
        for _ in 0..3 {
            st.apply(&ev(EventKind::Close {
                span: "unit",
                id: 9,
                dur_ns: 5,
                fields: vec![("figure", "fig10".into()), ("cost", 25u64.into())],
            }));
        }
        assert!(st.finished());
        assert_eq!(st.eta_secs(4.0), None);
    }
}
