//! Event-log validation — the library behind `graphtool events-check`.
//!
//! Verifies a `piccolo-events/v1` file end to end: line checksums (via the
//! shared [`crate::linecodec`]), the schema header, per-event shape, sequence
//! and timestamp monotonicity, span balance (every open eventually closed,
//! close names matching, parents open before their children), and the
//! unit-count cross-check (closed `unit` spans == the `units` planned by the
//! `campaign` spans).

use crate::json::Val;
use crate::linecodec;
use std::collections::BTreeMap;
use std::path::Path;

/// Cap on recorded error strings; past this, further errors only bump
/// [`EventsReport::errors_truncated`].
const MAX_ERRORS: usize = 20;

/// The outcome of [`check_events`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventsReport {
    /// Checksum-verified payload lines, including the schema header.
    pub lines: usize,
    /// Lines whose checksum or framing failed (a clean log has zero).
    pub corrupt: usize,
    /// Parsed event records (excludes the header).
    pub events: usize,
    /// `open` records seen.
    pub spans_opened: usize,
    /// `close` records seen.
    pub spans_closed: usize,
    /// `log` records seen.
    pub log_lines: usize,
    /// Closed spans named `unit`.
    pub unit_spans: usize,
    /// Units planned by `campaign` span opens (summed), if any campaign ran.
    pub campaign_units: Option<u64>,
    /// Validation failures, in file order (capped at `MAX_ERRORS`).
    pub errors: Vec<String>,
    /// Errors beyond the cap, counted but not recorded.
    pub errors_truncated: usize,
}

impl EventsReport {
    /// Whether the log is fully valid: checksum-clean and error-free.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.corrupt == 0 && self.errors.is_empty()
    }

    fn error(&mut self, msg: String) {
        if self.errors.len() < MAX_ERRORS {
            self.errors.push(msg);
        } else {
            self.errors_truncated += 1;
        }
    }
}

impl std::fmt::Display for EventsReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} line(s), {} corrupt, {} event(s): {} open / {} close ({} unit(s){}), {} log line(s)",
            self.lines,
            self.corrupt,
            self.events,
            self.spans_opened,
            self.spans_closed,
            self.unit_spans,
            match self.campaign_units {
                Some(planned) => format!(" of {planned} planned"),
                None => String::new(),
            },
            self.log_lines,
        )
    }
}

fn get_u64(obj: &Val, key: &str) -> Option<u64> {
    obj.get(key).and_then(Val::as_u64)
}

fn get_str<'a>(obj: &'a Val, key: &str) -> Option<&'a str> {
    obj.get(key).and_then(Val::as_str)
}

/// Validates the event log at `path`. See the module docs for what is checked;
/// all findings land in the report ([`EventsReport::clean`] summarizes), so a
/// partially damaged log still yields full diagnostics.
///
/// # Errors
///
/// Only I/O errors reading the file propagate.
pub fn check_events(path: &Path) -> std::io::Result<EventsReport> {
    let scanned = linecodec::read_lines(path)?;
    let mut report = EventsReport {
        lines: scanned.payloads.len(),
        corrupt: scanned.corrupt,
        ..EventsReport::default()
    };

    let mut payloads = scanned.payloads.iter();
    match payloads.next() {
        Some(header) => match Val::parse(header) {
            Ok(doc) => match get_str(&doc, "schema") {
                Some(crate::EVENTS_SCHEMA) => {}
                Some(other) => report.error(format!(
                    "header schema is '{other}', expected '{}'",
                    crate::EVENTS_SCHEMA
                )),
                None => report.error("header line carries no \"schema\" field".to_string()),
            },
            Err(e) => report.error(format!("header line is not valid JSON: {e}")),
        },
        None => {
            report.error("empty log: no schema header line".to_string());
            return Ok(report);
        }
    }

    // Open spans: id → name. BTreeMap so leftover-span reporting is ordered.
    let mut open: BTreeMap<u64, String> = BTreeMap::new();
    let mut ever_opened: BTreeMap<u64, ()> = BTreeMap::new();
    let mut last_seq: Option<u64> = None;
    let mut last_t_ns: Option<u64> = None;
    let mut campaign_units: Option<u64> = None;

    for (index, payload) in payloads.enumerate() {
        let record = index + 2; // 1-based line-of-interest, after the header
        let doc = match Val::parse(payload) {
            Ok(doc) => doc,
            Err(e) => {
                report.error(format!("record {record}: not valid JSON: {e}"));
                continue;
            }
        };
        report.events += 1;

        match get_u64(&doc, "seq") {
            Some(seq) => {
                if let Some(prev) = last_seq {
                    if seq <= prev {
                        report.error(format!(
                            "record {record}: seq {seq} not greater than previous {prev}"
                        ));
                    }
                }
                last_seq = Some(seq);
            }
            None => report.error(format!("record {record}: missing seq")),
        }
        match get_u64(&doc, "t_ns") {
            Some(t_ns) => {
                if let Some(prev) = last_t_ns {
                    if t_ns < prev {
                        report.error(format!(
                            "record {record}: t_ns {t_ns} earlier than previous {prev}"
                        ));
                    }
                }
                last_t_ns = Some(t_ns);
            }
            None => report.error(format!("record {record}: missing t_ns")),
        }

        let parent_ok = |doc: &Val, open: &BTreeMap<u64, String>| -> Result<(), String> {
            match doc.get("parent") {
                None => Err("missing parent field".to_string()),
                Some(Val::Null) => Ok(()),
                Some(v) => match v.as_u64() {
                    Some(pid) if open.contains_key(&pid) => Ok(()),
                    Some(pid) => Err(format!("parent #{pid} is not an open span")),
                    None => Err("parent is neither null nor a span id".to_string()),
                },
            }
        };

        match get_str(&doc, "ev") {
            Some("open") => {
                report.spans_opened += 1;
                let span = get_str(&doc, "span").unwrap_or("");
                if span.is_empty() {
                    report.error(format!("record {record}: open without span name"));
                }
                if let Err(e) = parent_ok(&doc, &open) {
                    report.error(format!("record {record}: open {span}: {e}"));
                }
                match get_u64(&doc, "id") {
                    Some(id) => {
                        if ever_opened.insert(id, ()).is_some() {
                            report.error(format!("record {record}: span id #{id} reused"));
                        }
                        open.insert(id, span.to_string());
                    }
                    None => report.error(format!("record {record}: open without id")),
                }
                if span == "campaign" {
                    if let Some(units) = doc.get("fields").and_then(|f| get_u64(f, "units")) {
                        campaign_units = Some(campaign_units.unwrap_or(0) + units);
                    }
                }
            }
            Some("close") => {
                report.spans_closed += 1;
                let span = get_str(&doc, "span").unwrap_or("");
                if span == "unit" {
                    report.unit_spans += 1;
                }
                if get_u64(&doc, "dur_ns").is_none() {
                    report.error(format!("record {record}: close without dur_ns"));
                }
                match get_u64(&doc, "id") {
                    Some(id) => match open.remove(&id) {
                        Some(opened_as) if opened_as == span => {}
                        Some(opened_as) => report.error(format!(
                            "record {record}: close '{span}' does not match open '{opened_as}' for span #{id}"
                        )),
                        None => report.error(format!(
                            "record {record}: close of span #{id} which is not open"
                        )),
                    },
                    None => report.error(format!("record {record}: close without id")),
                }
            }
            Some("point") => {
                if get_str(&doc, "name").is_none_or(str::is_empty) {
                    report.error(format!("record {record}: point without name"));
                }
                if let Err(e) = parent_ok(&doc, &open) {
                    report.error(format!("record {record}: point: {e}"));
                }
            }
            Some("log") => {
                report.log_lines += 1;
                let level = get_str(&doc, "level").unwrap_or("");
                if !matches!(level, "error" | "warn" | "info" | "debug") {
                    report.error(format!("record {record}: unknown log level '{level}'"));
                }
                if get_str(&doc, "msg").is_none() {
                    report.error(format!("record {record}: log without msg"));
                }
            }
            Some(other) => report.error(format!("record {record}: unknown ev kind '{other}'")),
            None => report.error(format!("record {record}: missing ev kind")),
        }
    }

    for (id, name) in &open {
        report.error(format!("span {name}#{id} never closed"));
    }
    report.campaign_units = campaign_units;
    if let Some(planned) = campaign_units {
        if planned != report.unit_spans as u64 {
            report.error(format!(
                "campaign planned {planned} unit(s) but {} unit span(s) closed",
                report.unit_spans
            ));
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::JsonlSink;
    use crate::sink::Sink as _;
    use crate::{Event, EventKind, Level};
    use std::sync::PoisonError;

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("piccolo-obs-check-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn ev(seq: u64, t_ns: u64, kind: EventKind) -> Event {
        Event { seq, t_ns, kind }
    }

    /// A canonical well-formed stream: campaign(unit, point, log) then close.
    fn well_formed(sink: &JsonlSink) {
        sink.emit(&ev(
            1,
            10,
            EventKind::Open {
                span: "campaign",
                id: 1,
                parent: None,
                fields: vec![("units", 1u64.into()), ("cost_total", 5u64.into())],
            },
        ));
        sink.emit(&ev(
            2,
            11,
            EventKind::Point {
                name: "figure_plan",
                parent: Some(1),
                fields: vec![("figure", "fig10".into()), ("units", 1u64.into())],
            },
        ));
        sink.emit(&ev(
            3,
            12,
            EventKind::Open {
                span: "unit",
                id: 2,
                parent: Some(1),
                fields: vec![("unit", 0u64.into())],
            },
        ));
        sink.emit(&ev(
            4,
            13,
            EventKind::Log {
                level: Level::Info,
                msg: "halfway".to_string(),
            },
        ));
        sink.emit(&ev(
            5,
            14,
            EventKind::Close {
                span: "unit",
                id: 2,
                dur_ns: 2,
                fields: vec![("figure", "fig10".into()), ("cost", 5u64.into())],
            },
        ));
        sink.emit(&ev(
            6,
            15,
            EventKind::Close {
                span: "campaign",
                id: 1,
                dur_ns: 5,
                fields: vec![],
            },
        ));
    }

    #[test]
    fn a_well_formed_log_checks_clean() {
        let dir = temp_dir("clean");
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        well_formed(&sink);
        let report = check_events(&path).unwrap();
        assert!(report.clean(), "errors: {:?}", report.errors);
        assert_eq!(report.lines, 7);
        assert_eq!(report.events, 6);
        assert_eq!(report.spans_opened, 2);
        assert_eq!(report.spans_closed, 2);
        assert_eq!(report.unit_spans, 1);
        assert_eq!(report.campaign_units, Some(1));
        assert_eq!(report.log_lines, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_lines_are_tolerated_but_reported() {
        let dir = temp_dir("corrupt");
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        well_formed(&sink);
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new()
                .append(true)
                .open(&path)
                .unwrap();
            f.write_all(b"garbage without a checksum\n").unwrap();
        }
        let report = check_events(&path).unwrap();
        // The remaining records still validate fully — corruption costs one
        // line, never the scan — but the log is no longer clean.
        assert_eq!(report.corrupt, 1);
        assert!(report.errors.is_empty(), "errors: {:?}", report.errors);
        assert!(!report.clean());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unbalanced_and_misparented_spans_are_flagged() {
        let dir = temp_dir("unbalanced");
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&ev(
            1,
            10,
            EventKind::Open {
                span: "campaign",
                id: 1,
                parent: None,
                fields: vec![],
            },
        ));
        // Child of a span that was never opened.
        sink.emit(&ev(
            2,
            11,
            EventKind::Open {
                span: "unit",
                id: 2,
                parent: Some(99),
                fields: vec![],
            },
        ));
        // Close with a mismatched name.
        sink.emit(&ev(
            3,
            12,
            EventKind::Close {
                span: "graph_build",
                id: 2,
                dur_ns: 1,
                fields: vec![],
            },
        ));
        // Campaign never closes, and seq goes backwards.
        sink.emit(&ev(
            2,
            12,
            EventKind::Log {
                level: Level::Info,
                msg: "x".to_string(),
            },
        ));
        let report = check_events(&path).unwrap();
        assert!(!report.clean());
        let text = report.errors.join("\n");
        assert!(text.contains("parent #99 is not an open span"), "{text}");
        assert!(text.contains("does not match open"), "{text}");
        assert!(text.contains("never closed"), "{text}");
        assert!(text.contains("not greater than previous"), "{text}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unit_count_must_match_the_campaign_plan() {
        let dir = temp_dir("unitcount");
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&ev(
            1,
            10,
            EventKind::Open {
                span: "campaign",
                id: 1,
                parent: None,
                fields: vec![("units", 3u64.into())],
            },
        ));
        sink.emit(&ev(
            2,
            11,
            EventKind::Close {
                span: "campaign",
                id: 1,
                dur_ns: 1,
                fields: vec![],
            },
        ));
        let report = check_events(&path).unwrap();
        assert!(!report.clean());
        assert!(
            report
                .errors
                .iter()
                .any(|e| e.contains("planned 3 unit(s) but 0")),
            "errors: {:?}",
            report.errors
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_schema_headers_are_flagged() {
        let dir = temp_dir("schema");
        let path = dir.join("events.jsonl");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            crate::linecodec::append_line(&mut f, r#"{"schema":"piccolo-events/v999"}"#).unwrap();
        }
        let report = check_events(&path).unwrap();
        assert!(report.errors[0].contains("piccolo-events/v999"));

        // The real emission path (global dispatcher → JsonlSink) produces a
        // clean, correctly-headed log; exercised under the crate test lock.
        let _guard = crate::tests::TEST_LOCK
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        let live = dir.join("live.jsonl");
        let id = crate::add_events_file(&live).unwrap();
        {
            let campaign = crate::span("campaign", vec![("units", 1u64.into())]);
            let unit = crate::span_with_parent("unit", campaign.id(), vec![]);
            unit.close(vec![]);
            campaign.close(vec![]);
        }
        let sink = crate::remove_sink(id).unwrap();
        sink.flush();
        let report = check_events(&live).unwrap();
        assert!(report.clean(), "errors: {:?}", report.errors);
        assert_eq!(report.unit_spans, 1);
        assert_eq!(report.campaign_units, Some(1));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
