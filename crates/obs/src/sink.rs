//! Event sinks: the pluggable receiving end of the event stream.
//!
//! Sinks receive every [`Event`] in emission order, under the dispatcher's
//! global lock — `emit` implementations must be quick and must not emit
//! events themselves. The crate ships three: [`StderrSink`] (leveled human
//! log), [`JsonlSink`] (the checksummed `piccolo-events/v1` log behind
//! `--events`) and [`crate::progress::ProgressSink`] (`--progress`), plus the
//! in-memory [`CollectSink`] for tests.

use crate::{linecodec, Event, EventKind, Level, LevelFilter};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

/// The receiving end of the event stream. See the module docs for the
/// delivery contract.
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn emit(&self, event: &Event);
    /// Whether this sink wants span/point traffic. When *no* attached sink
    /// does, span emission short-circuits to a relaxed atomic load, so
    /// instrumentation is effectively free (log lines are always delivered).
    fn wants_spans(&self) -> bool {
        true
    }
    /// Flushes buffered state (called by [`crate::flush_sinks`]).
    fn flush(&self) {}
}

impl std::fmt::Debug for dyn Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn Sink")
    }
}

/// The leveled human sink: renders log lines (and, at `debug`, span traffic)
/// to stderr with a greppable `level: ` tag prefix.
#[derive(Debug)]
pub struct StderrSink {
    level: AtomicU8,
}

impl StderrSink {
    /// Creates the sink with an initial filter.
    #[must_use]
    pub fn new(filter: LevelFilter) -> Self {
        Self {
            level: AtomicU8::new(filter as u8),
        }
    }

    /// Replaces the filter (the `--log-level` flag re-applies this).
    pub fn set_level(&self, filter: LevelFilter) {
        self.level.store(filter as u8, Ordering::Release);
    }

    fn filter(&self) -> LevelFilter {
        match self.level.load(Ordering::Acquire) {
            0 => LevelFilter::Quiet,
            1 => LevelFilter::Error,
            2 => LevelFilter::Warn,
            3 => LevelFilter::Info,
            _ => LevelFilter::Debug,
        }
    }
}

/// Renders `event` for a stderr filter of `filter`; `None` when filtered out.
/// Pure, so the formatting is unit-testable without capturing stderr.
#[must_use]
pub fn render_stderr_line(event: &Event, filter: LevelFilter) -> Option<String> {
    fn fields_suffix(out: &mut String, fields: &crate::Fields) {
        for (k, v) in fields {
            let _ = write!(out, " {k}={v}");
        }
    }
    match &event.kind {
        EventKind::Log { level, msg } => filter
            .allows(*level)
            .then(|| format!("{}: {msg}", level.tag())),
        _ if !filter.allows(Level::Debug) => None,
        EventKind::Open {
            span,
            id,
            parent,
            fields,
        } => {
            let mut line = format!("debug: span open {span}#{id}");
            if let Some(p) = parent {
                let _ = write!(line, " parent=#{p}");
            }
            fields_suffix(&mut line, fields);
            Some(line)
        }
        EventKind::Close {
            span,
            id,
            dur_ns,
            fields,
        } => {
            let mut line = format!("debug: span close {span}#{id} dur_ns={dur_ns}");
            fields_suffix(&mut line, fields);
            Some(line)
        }
        EventKind::Point { name, fields, .. } => {
            let mut line = format!("debug: event {name}");
            fields_suffix(&mut line, fields);
            Some(line)
        }
    }
}

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        if let Some(line) = render_stderr_line(event, self.filter()) {
            eprintln!("{line}");
        }
    }

    fn wants_spans(&self) -> bool {
        self.filter().allows(Level::Debug)
    }
}

/// The `piccolo-events/v1` JSONL sink (`--events PATH`).
///
/// Writes one checksummed line per event through the run journal's line codec
/// ([`linecodec::encode_line`]), after a header line carrying the schema id.
/// Each line is appended with a single unbuffered write, so a killed process
/// costs at most its torn final line — exactly the journal's durability story.
/// Write errors are reported to stderr once and further events are dropped;
/// observability must never take down the run it is observing.
///
/// With a byte limit ([`JsonlSink::create_with_limit`], `--events-max-bytes`),
/// the sink rotates before a write would push the current file past the limit:
/// the full file moves to `<path>.1` (replacing any previous rotation) and a
/// fresh file starts with its own schema header line, so both generations are
/// independently valid `piccolo-events/v1` streams. At most two generations
/// exist, bounding a long-running coordinator's event-log footprint at roughly
/// twice the limit.
#[derive(Debug)]
pub struct JsonlSink {
    state: Mutex<JsonlState>,
    path: PathBuf,
    max_bytes: Option<u64>,
    failed: AtomicBool,
}

#[derive(Debug)]
struct JsonlState {
    file: std::fs::File,
    written: u64,
    header_len: u64,
}

fn create_with_header(path: &Path) -> std::io::Result<JsonlState> {
    let mut file = std::fs::File::create(path)?;
    let mut header = linecodec::encode_line(&format!(r#"{{"schema":"{}"}}"#, crate::EVENTS_SCHEMA));
    header.push('\n');
    file.write_all(header.as_bytes())?;
    Ok(JsonlState {
        file,
        written: header.len() as u64,
        header_len: header.len() as u64,
    })
}

impl JsonlSink {
    /// Creates (truncating) `path` and writes the schema header line. No size
    /// cap: the file grows for the life of the run.
    ///
    /// # Errors
    ///
    /// Propagates file creation / header write errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Self::create_with_limit(path, None)
    }

    /// Like [`JsonlSink::create`], but rotates to `<path>.1` whenever the next
    /// line would push the file past `max_bytes` (see the type docs). A limit
    /// too small for even one line still admits one line per generation — the
    /// cap bounds footprint, it never drops events.
    ///
    /// # Errors
    ///
    /// Propagates file creation / header write errors.
    pub fn create_with_limit(path: &Path, max_bytes: Option<u64>) -> std::io::Result<Self> {
        Ok(Self {
            state: Mutex::new(create_with_header(path)?),
            path: path.to_path_buf(),
            max_bytes,
            failed: AtomicBool::new(false),
        })
    }

    /// The path this sink writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The rotation path (`<path>.1`) used when a byte limit is set.
    #[must_use]
    pub fn rotated_path(&self) -> PathBuf {
        let mut name = self.path.file_name().map_or_else(
            || std::ffi::OsString::from("events"),
            std::ffi::OsStr::to_os_string,
        );
        name.push(".1");
        self.path.with_file_name(name)
    }

    fn write_line(&self, state: &mut JsonlState, line: &str) -> std::io::Result<()> {
        if let Some(limit) = self.max_bytes {
            let over = state.written + line.len() as u64 > limit;
            // Rotate only when the current generation holds at least one event
            // line beyond the header — otherwise a line longer than the limit
            // would rotate forever without ever landing anywhere.
            if over && state.written > state.header_len {
                state.file.flush()?;
                std::fs::rename(&self.path, self.rotated_path())?;
                *state = create_with_header(&self.path)?;
            }
        }
        state.file.write_all(line.as_bytes())?;
        state.written += line.len() as u64;
        Ok(())
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        if self.failed.load(Ordering::Acquire) {
            return;
        }
        let mut line = linecodec::encode_line(&event.json_payload());
        line.push('\n');
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = self.write_line(&mut state, &line) {
            if !self.failed.swap(true, Ordering::AcqRel) {
                eprintln!(
                    "piccolo-obs: events sink {}: write failed ({e}); further events dropped",
                    self.path.display()
                );
            }
        }
    }

    fn flush(&self) {
        let mut state = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = state.file.flush();
    }
}

/// A bounded in-memory relay: buffers each event's `piccolo-events/v1` payload
/// line for another thread to [`RelaySink::drain`] and forward elsewhere — the
/// worker side of the coordinator's live event stream. When the buffer is full
/// the **oldest** line is dropped (and counted), so a stalled network never
/// grows memory or blocks the instrumented run.
#[derive(Debug)]
pub struct RelaySink {
    buf: Mutex<std::collections::VecDeque<String>>,
    cap: usize,
    dropped: std::sync::atomic::AtomicU64,
}

impl RelaySink {
    /// A relay holding at most `cap` undrained lines.
    #[must_use]
    pub fn new(cap: usize) -> Self {
        Self {
            buf: Mutex::new(std::collections::VecDeque::new()),
            cap: cap.max(1),
            dropped: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// Takes every buffered payload line, in emission order.
    #[must_use]
    pub fn drain(&self) -> Vec<String> {
        self.buf
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .drain(..)
            .collect()
    }

    /// How many lines were dropped because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }
}

impl Sink for RelaySink {
    fn emit(&self, event: &Event) {
        let mut buf = self.buf.lock().unwrap_or_else(PoisonError::into_inner);
        if buf.len() >= self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.json_payload());
    }
}

/// An in-memory sink for tests: collects every delivered event.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Mutex<Vec<Event>>,
    logs_only: bool,
}

impl CollectSink {
    /// A collector that declares no span interest (`wants_spans` = false),
    /// for testing the emission gate.
    #[must_use]
    pub fn logs_only() -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            logs_only: true,
        }
    }

    /// Takes everything collected so far.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl Sink for CollectSink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }

    fn wants_spans(&self) -> bool {
        !self.logs_only
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_event(level: Level, msg: &str) -> Event {
        Event {
            seq: 1,
            t_ns: 0,
            kind: EventKind::Log {
                level,
                msg: msg.to_string(),
            },
        }
    }

    #[test]
    fn stderr_rendering_respects_the_filter() {
        let e = log_event(Level::Info, "snapshot cache hit");
        assert_eq!(
            render_stderr_line(&e, LevelFilter::Info).as_deref(),
            Some("info: snapshot cache hit")
        );
        assert_eq!(render_stderr_line(&e, LevelFilter::Warn), None);
        assert_eq!(render_stderr_line(&e, LevelFilter::Quiet), None);
        let err = log_event(Level::Error, "boom");
        assert_eq!(render_stderr_line(&err, LevelFilter::Quiet), None);
        assert_eq!(
            render_stderr_line(&err, LevelFilter::Error).as_deref(),
            Some("error: boom")
        );
    }

    #[test]
    fn span_traffic_renders_only_at_debug() {
        let open = Event {
            seq: 2,
            t_ns: 10,
            kind: EventKind::Open {
                span: "unit",
                id: 4,
                parent: Some(1),
                fields: vec![("figure", "fig10".into())],
            },
        };
        assert_eq!(render_stderr_line(&open, LevelFilter::Info), None);
        assert_eq!(
            render_stderr_line(&open, LevelFilter::Debug).as_deref(),
            Some("debug: span open unit#4 parent=#1 figure=fig10")
        );
    }

    #[test]
    fn jsonl_sink_rotates_at_the_byte_limit_with_fresh_headers() {
        let dir = std::env::temp_dir().join(format!("piccolo-obs-rotate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        // A limit barely above the header admits one event line per generation.
        let sink = JsonlSink::create_with_limit(&path, Some(80)).unwrap();
        for i in 0..3 {
            sink.emit(&log_event(Level::Info, &format!("line {i}")));
        }
        sink.flush();
        let live = linecodec::read_lines(&path).unwrap();
        let rotated = linecodec::read_lines(&sink.rotated_path()).unwrap();
        assert_eq!((live.corrupt, rotated.corrupt), (0, 0));
        // Both generations are independently valid streams: header first.
        assert_eq!(live.payloads[0], r#"{"schema":"piccolo-events/v1"}"#);
        assert_eq!(rotated.payloads[0], r#"{"schema":"piccolo-events/v1"}"#);
        // At most two generations exist: the oldest line aged out when its
        // generation was replaced, the newest two survive in order.
        let events: Vec<&String> = rotated.payloads[1..]
            .iter()
            .chain(&live.payloads[1..])
            .collect();
        assert_eq!(events.len(), 2);
        assert!(events[0].contains("line 1") && events[1].contains("line 2"));
        assert!(!std::path::Path::new(&format!("{}.2", path.display())).exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn relay_sink_buffers_payloads_and_drops_oldest_when_full() {
        let relay = RelaySink::new(2);
        for i in 0..3 {
            relay.emit(&log_event(Level::Info, &format!("m{i}")));
        }
        let drained = relay.drain();
        assert_eq!(drained.len(), 2);
        assert!(drained[0].contains("m1") && drained[1].contains("m2"));
        assert_eq!(relay.dropped(), 1);
        assert!(relay.drain().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_checksummed_header_and_events() {
        let dir = std::env::temp_dir().join(format!("piccolo-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&log_event(Level::Info, "one"));
        sink.flush();
        let lines = linecodec::read_lines(&path).unwrap();
        assert_eq!(lines.corrupt, 0);
        assert_eq!(lines.payloads.len(), 2);
        assert_eq!(lines.payloads[0], r#"{"schema":"piccolo-events/v1"}"#);
        assert!(lines.payloads[1].contains(r#""ev":"log""#));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
