//! Event sinks: the pluggable receiving end of the event stream.
//!
//! Sinks receive every [`Event`] in emission order, under the dispatcher's
//! global lock — `emit` implementations must be quick and must not emit
//! events themselves. The crate ships three: [`StderrSink`] (leveled human
//! log), [`JsonlSink`] (the checksummed `piccolo-events/v1` log behind
//! `--events`) and [`crate::progress::ProgressSink`] (`--progress`), plus the
//! in-memory [`CollectSink`] for tests.

use crate::{linecodec, Event, EventKind, Level, LevelFilter};
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::sync::{Mutex, PoisonError};

/// The receiving end of the event stream. See the module docs for the
/// delivery contract.
pub trait Sink: Send + Sync {
    /// Delivers one event.
    fn emit(&self, event: &Event);
    /// Whether this sink wants span/point traffic. When *no* attached sink
    /// does, span emission short-circuits to a relaxed atomic load, so
    /// instrumentation is effectively free (log lines are always delivered).
    fn wants_spans(&self) -> bool {
        true
    }
    /// Flushes buffered state (called by [`crate::flush_sinks`]).
    fn flush(&self) {}
}

impl std::fmt::Debug for dyn Sink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("dyn Sink")
    }
}

/// The leveled human sink: renders log lines (and, at `debug`, span traffic)
/// to stderr with a greppable `level: ` tag prefix.
#[derive(Debug)]
pub struct StderrSink {
    level: AtomicU8,
}

impl StderrSink {
    /// Creates the sink with an initial filter.
    #[must_use]
    pub fn new(filter: LevelFilter) -> Self {
        Self {
            level: AtomicU8::new(filter as u8),
        }
    }

    /// Replaces the filter (the `--log-level` flag re-applies this).
    pub fn set_level(&self, filter: LevelFilter) {
        self.level.store(filter as u8, Ordering::Release);
    }

    fn filter(&self) -> LevelFilter {
        match self.level.load(Ordering::Acquire) {
            0 => LevelFilter::Quiet,
            1 => LevelFilter::Error,
            2 => LevelFilter::Warn,
            3 => LevelFilter::Info,
            _ => LevelFilter::Debug,
        }
    }
}

/// Renders `event` for a stderr filter of `filter`; `None` when filtered out.
/// Pure, so the formatting is unit-testable without capturing stderr.
#[must_use]
pub fn render_stderr_line(event: &Event, filter: LevelFilter) -> Option<String> {
    fn fields_suffix(out: &mut String, fields: &crate::Fields) {
        for (k, v) in fields {
            let _ = write!(out, " {k}={v}");
        }
    }
    match &event.kind {
        EventKind::Log { level, msg } => filter
            .allows(*level)
            .then(|| format!("{}: {msg}", level.tag())),
        _ if !filter.allows(Level::Debug) => None,
        EventKind::Open {
            span,
            id,
            parent,
            fields,
        } => {
            let mut line = format!("debug: span open {span}#{id}");
            if let Some(p) = parent {
                let _ = write!(line, " parent=#{p}");
            }
            fields_suffix(&mut line, fields);
            Some(line)
        }
        EventKind::Close {
            span,
            id,
            dur_ns,
            fields,
        } => {
            let mut line = format!("debug: span close {span}#{id} dur_ns={dur_ns}");
            fields_suffix(&mut line, fields);
            Some(line)
        }
        EventKind::Point { name, fields, .. } => {
            let mut line = format!("debug: event {name}");
            fields_suffix(&mut line, fields);
            Some(line)
        }
    }
}

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        if let Some(line) = render_stderr_line(event, self.filter()) {
            eprintln!("{line}");
        }
    }

    fn wants_spans(&self) -> bool {
        self.filter().allows(Level::Debug)
    }
}

/// The `piccolo-events/v1` JSONL sink (`--events PATH`).
///
/// Writes one checksummed line per event through the run journal's line codec
/// ([`linecodec::encode_line`]), after a header line carrying the schema id.
/// Each line is appended with a single unbuffered write, so a killed process
/// costs at most its torn final line — exactly the journal's durability story.
/// Write errors are reported to stderr once and further events are dropped;
/// observability must never take down the run it is observing.
#[derive(Debug)]
pub struct JsonlSink {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    failed: AtomicBool,
}

impl JsonlSink {
    /// Creates (truncating) `path` and writes the schema header line.
    ///
    /// # Errors
    ///
    /// Propagates file creation / header write errors.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        let mut file = std::fs::File::create(path)?;
        let header = format!(r#"{{"schema":"{}"}}"#, crate::EVENTS_SCHEMA);
        linecodec::append_line(&mut file, &header)?;
        Ok(Self {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            failed: AtomicBool::new(false),
        })
    }

    /// The path this sink writes to.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        if self.failed.load(Ordering::Acquire) {
            return;
        }
        let payload = event.json_payload();
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        if let Err(e) = linecodec::append_line(&mut *file, &payload) {
            if !self.failed.swap(true, Ordering::AcqRel) {
                eprintln!(
                    "piccolo-obs: events sink {}: write failed ({e}); further events dropped",
                    self.path.display()
                );
            }
        }
    }

    fn flush(&self) {
        let mut file = self.file.lock().unwrap_or_else(PoisonError::into_inner);
        let _ = file.flush();
    }
}

/// An in-memory sink for tests: collects every delivered event.
#[derive(Debug, Default)]
pub struct CollectSink {
    events: Mutex<Vec<Event>>,
    logs_only: bool,
}

impl CollectSink {
    /// A collector that declares no span interest (`wants_spans` = false),
    /// for testing the emission gate.
    #[must_use]
    pub fn logs_only() -> Self {
        Self {
            events: Mutex::new(Vec::new()),
            logs_only: true,
        }
    }

    /// Takes everything collected so far.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }
}

impl Sink for CollectSink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }

    fn wants_spans(&self) -> bool {
        !self.logs_only
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_event(level: Level, msg: &str) -> Event {
        Event {
            seq: 1,
            t_ns: 0,
            kind: EventKind::Log {
                level,
                msg: msg.to_string(),
            },
        }
    }

    #[test]
    fn stderr_rendering_respects_the_filter() {
        let e = log_event(Level::Info, "snapshot cache hit");
        assert_eq!(
            render_stderr_line(&e, LevelFilter::Info).as_deref(),
            Some("info: snapshot cache hit")
        );
        assert_eq!(render_stderr_line(&e, LevelFilter::Warn), None);
        assert_eq!(render_stderr_line(&e, LevelFilter::Quiet), None);
        let err = log_event(Level::Error, "boom");
        assert_eq!(render_stderr_line(&err, LevelFilter::Quiet), None);
        assert_eq!(
            render_stderr_line(&err, LevelFilter::Error).as_deref(),
            Some("error: boom")
        );
    }

    #[test]
    fn span_traffic_renders_only_at_debug() {
        let open = Event {
            seq: 2,
            t_ns: 10,
            kind: EventKind::Open {
                span: "unit",
                id: 4,
                parent: Some(1),
                fields: vec![("figure", "fig10".into())],
            },
        };
        assert_eq!(render_stderr_line(&open, LevelFilter::Info), None);
        assert_eq!(
            render_stderr_line(&open, LevelFilter::Debug).as_deref(),
            Some("debug: span open unit#4 parent=#1 figure=fig10")
        );
    }

    #[test]
    fn jsonl_sink_writes_checksummed_header_and_events() {
        let dir = std::env::temp_dir().join(format!("piccolo-obs-sink-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&log_event(Level::Info, "one"));
        sink.flush();
        let lines = linecodec::read_lines(&path).unwrap();
        assert_eq!(lines.corrupt, 0);
        assert_eq!(lines.payloads.len(), 2);
        assert_eq!(lines.payloads[0], r#"{"schema":"piccolo-events/v1"}"#);
        assert!(lines.payloads[1].contains(r#""ev":"log""#));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
