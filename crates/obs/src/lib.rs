//! Structured tracing, metrics and event-stream sinks for the Piccolo stack.
//!
//! `piccolo-obs` is the *only* crate in the workspace that is allowed to read
//! wall-clock time for reporting (enforced by `piccolo-lint`'s `no-wall-clock`
//! rule). Everything it captures flows **out** of the simulation — into an
//! event log, a metrics document, or stderr — and never back into any
//! deterministic artifact: `results.json`, shard documents, run journals and
//! plan hashes are byte-identical with tracing on or off, at any `--jobs` /
//! `--intra-jobs` / shard / resume split. See `docs/observability.md`.
//!
//! The crate is hand-rolled and dependency-free, like the rest of the
//! workspace. It provides:
//!
//! * **Spans and events** — explicit-guard spans ([`span`], [`span_with_parent`],
//!   [`Span::close`]) with monotonic timestamps, parent ids and key/value
//!   [`Value`] fields, plus point events ([`point`]) and leveled log lines
//!   ([`log`], [`info`], …), all fanned out through a pluggable [`Sink`] trait.
//! * **Sinks** — a checksummed-line JSONL sink ([`sink::JsonlSink`], schema
//!   `piccolo-events/v1`, sharing the run journal's line codec in
//!   [`linecodec`]), a leveled stderr sink ([`sink::StderrSink`], the home of
//!   every driver log line), and a live progress renderer
//!   ([`progress::ProgressSink`]).
//! * **Metrics** — a typed counter/gauge/histogram registry ([`metrics`])
//!   exported as `piccolo-metrics/v1`.
//! * **Validation** — [`check::check_events`], the library behind
//!   `graphtool events-check`.
//!
//! # Emission is free when nothing listens
//!
//! Span and point emission is gated on a relaxed atomic: with no sink
//! interested in spans (the default — the stderr sink only wants them at
//! `debug`), [`span`] returns an inert guard without taking any lock, so
//! instrumented hot paths cost one atomic load.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod check;
pub mod json;
pub mod linecodec;
pub mod metrics;
pub mod progress;
pub mod sink;

use sink::{Sink, StderrSink};
use std::marker::PhantomData;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};
use std::time::Instant;

/// Schema identifier of the event log written by [`sink::JsonlSink`].
pub const EVENTS_SCHEMA: &str = "piccolo-events/v1";
/// Schema identifier of the metrics document written by [`metrics::metrics_json`].
pub const METRICS_SCHEMA: &str = "piccolo-metrics/v1";

/// Severity of a log line ([`log`] and friends).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// A failure the driver is about to act on (usually by exiting non-zero).
    Error = 1,
    /// Something surprising that does not stop the run.
    Warn = 2,
    /// Normal operational notes (cache hits, resume summaries, output paths).
    Info = 3,
    /// High-volume detail, including rendered span traffic.
    Debug = 4,
}

impl Level {
    /// The lowercase tag the stderr sink prefixes lines with (`info: …`).
    #[must_use]
    pub fn tag(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// A verbosity threshold for the stderr sink (`--log-level`).
///
/// `Quiet` silences everything, including errors; each other variant shows
/// lines at its level and below (so `Info` — the default — shows
/// `error`/`warn`/`info`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LevelFilter {
    /// Show nothing.
    Quiet = 0,
    /// Show `error` only.
    Error = 1,
    /// Show `error` and `warn`.
    Warn = 2,
    /// Show `error`, `warn` and `info` (the default).
    Info = 3,
    /// Show everything, including rendered span traffic.
    Debug = 4,
}

impl LevelFilter {
    /// Parses a `--log-level` argument (`quiet|error|warn|info|debug`).
    #[must_use]
    pub fn parse(name: &str) -> Option<LevelFilter> {
        Some(match name {
            "quiet" => LevelFilter::Quiet,
            "error" => LevelFilter::Error,
            "warn" => LevelFilter::Warn,
            "info" => LevelFilter::Info,
            "debug" => LevelFilter::Debug,
            _ => return None,
        })
    }

    /// Whether a line at `level` passes this filter.
    #[must_use]
    pub fn allows(self, level: Level) -> bool {
        self as u8 >= level as u8
    }
}

/// A field value attached to a span, point event or metric export.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// A boolean flag.
    Bool(bool),
    /// An unsigned counter/quantity. Serialized as a decimal *string* in JSON
    /// payloads — the workspace's lossless number codec (u64 can exceed 2^53).
    U64(u64),
    /// A floating-point quantity (ratios, densities). Serialized as a JSON
    /// number with shortest round-trip formatting.
    F64(f64),
    /// A short label (figure names, build specs, statuses).
    Str(String),
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(u64::from(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

impl std::fmt::Display for Value {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Bool(b) => write!(f, "{b}"),
            Value::U64(v) => write!(f, "{v}"),
            Value::F64(v) => {
                let mut s = String::new();
                json::write_number(&mut s, *v);
                f.write_str(&s)
            }
            Value::Str(s) => f.write_str(s),
        }
    }
}

/// Named fields attached to one span or event.
pub type Fields = Vec<(&'static str, Value)>;

/// One record on the event stream, as delivered to every [`Sink`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Global sequence number, 1-based, gapless per process in emission order.
    pub seq: u64,
    /// Monotonic nanoseconds since the first emission in this process.
    pub t_ns: u64,
    /// What happened.
    pub kind: EventKind,
}

/// The payload variants of an [`Event`].
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A span opened.
    Open {
        /// Span name from the fixed taxonomy (`campaign`, `unit`, …).
        span: &'static str,
        /// Process-unique span id (1-based).
        id: u64,
        /// Id of the enclosing span, if any. Parents always precede children
        /// on the stream.
        parent: Option<u64>,
        /// Key/value details.
        fields: Fields,
    },
    /// A span closed (every open is eventually matched, panics included —
    /// guards close on drop).
    Close {
        /// Same name the matching `Open` carried.
        span: &'static str,
        /// Matching span id.
        id: u64,
        /// Host wall-clock duration of the span.
        dur_ns: u64,
        /// Key/value details recorded at close time.
        fields: Fields,
    },
    /// An instantaneous event.
    Point {
        /// Event name (`graph_evict`, `figure_plan`, …).
        name: &'static str,
        /// Enclosing span, if any.
        parent: Option<u64>,
        /// Key/value details.
        fields: Fields,
    },
    /// A human-oriented log line (the migrated `eprintln!` traffic).
    Log {
        /// Severity.
        level: Level,
        /// Message text, exactly as the driver formatted it.
        msg: String,
    },
}

impl Event {
    /// The compact single-line JSON payload of this event (without the line
    /// checksum — [`sink::JsonlSink`] adds that via [`linecodec::encode_line`]).
    #[must_use]
    pub fn json_payload(&self) -> String {
        use json::Val;
        let fields_val = |fields: &Fields| {
            Val::Obj(
                fields
                    .iter()
                    .map(|(k, v)| {
                        let val = match v {
                            Value::Bool(b) => Val::Bool(*b),
                            Value::U64(n) => Val::Str(n.to_string()),
                            Value::F64(n) => Val::Num(*n),
                            Value::Str(s) => Val::Str(s.clone()),
                        };
                        ((*k).to_string(), val)
                    })
                    .collect(),
            )
        };
        let opt_id = |id: Option<u64>| match id {
            #[allow(clippy::cast_precision_loss)]
            Some(id) => Val::Num(id as f64),
            None => Val::Null,
        };
        #[allow(clippy::cast_precision_loss)]
        let mut obj = vec![
            ("seq".to_string(), Val::Num(self.seq as f64)),
            ("t_ns".to_string(), Val::Str(self.t_ns.to_string())),
        ];
        match &self.kind {
            EventKind::Open {
                span,
                id,
                parent,
                fields,
            } => {
                obj.push(("ev".to_string(), Val::Str("open".to_string())));
                obj.push(("span".to_string(), Val::Str((*span).to_string())));
                obj.push(("id".to_string(), opt_id(Some(*id))));
                obj.push(("parent".to_string(), opt_id(*parent)));
                obj.push(("fields".to_string(), fields_val(fields)));
            }
            EventKind::Close {
                span,
                id,
                dur_ns,
                fields,
            } => {
                obj.push(("ev".to_string(), Val::Str("close".to_string())));
                obj.push(("span".to_string(), Val::Str((*span).to_string())));
                obj.push(("id".to_string(), opt_id(Some(*id))));
                obj.push(("dur_ns".to_string(), Val::Str(dur_ns.to_string())));
                obj.push(("fields".to_string(), fields_val(fields)));
            }
            EventKind::Point {
                name,
                parent,
                fields,
            } => {
                obj.push(("ev".to_string(), Val::Str("point".to_string())));
                obj.push(("name".to_string(), Val::Str((*name).to_string())));
                obj.push(("parent".to_string(), opt_id(*parent)));
                obj.push(("fields".to_string(), fields_val(fields)));
            }
            EventKind::Log { level, msg } => {
                obj.push(("ev".to_string(), Val::Str("log".to_string())));
                obj.push(("level".to_string(), Val::Str(level.tag().to_string())));
                obj.push(("msg".to_string(), Val::Str(msg.clone())));
            }
        }
        Val::Obj(obj).to_json()
    }
}

/// Opaque handle returned by [`add_sink`], used to detach the sink again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SinkId(u64);

struct Registry {
    sinks: Vec<(u64, Arc<dyn Sink>)>,
    next_sink: u64,
    seq: u64,
    next_span: u64,
}

static REGISTRY: Mutex<Registry> = Mutex::new(Registry {
    sinks: Vec::new(),
    next_sink: 1,
    seq: 0,
    next_span: 1,
});
/// Fast gate for log emission (any sink attached at all).
static SINK_COUNT: AtomicUsize = AtomicUsize::new(0);
/// Fast gate for span/point emission (any sink that wants span traffic).
static SPAN_INTEREST: AtomicBool = AtomicBool::new(false);
static EPOCH: OnceLock<Instant> = OnceLock::new();
static STDERR: OnceLock<Arc<StderrSink>> = OnceLock::new();

thread_local! {
    static SPAN_STACK: std::cell::RefCell<Vec<u64>> = const { std::cell::RefCell::new(Vec::new()) };
}

fn now_ns() -> u64 {
    u64::try_from(EPOCH.get_or_init(Instant::now).elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn registry() -> std::sync::MutexGuard<'static, Registry> {
    REGISTRY.lock().unwrap_or_else(PoisonError::into_inner)
}

fn recompute_interest(reg: &Registry) {
    SINK_COUNT.store(reg.sinks.len(), Ordering::Release);
    let wants = reg.sinks.iter().any(|(_, s)| s.wants_spans());
    SPAN_INTEREST.store(wants, Ordering::Release);
}

/// Attaches a sink; every subsequent event is delivered to it (in emission
/// order — delivery happens under one global lock, so sinks need no ordering
/// logic of their own).
pub fn add_sink(sink: Arc<dyn Sink>) -> SinkId {
    let mut reg = registry();
    let id = reg.next_sink;
    reg.next_sink += 1;
    reg.sinks.push((id, sink));
    recompute_interest(&reg);
    SinkId(id)
}

/// Detaches a sink previously attached with [`add_sink`]. Returns the sink so
/// the caller can flush or inspect it; `None` if already removed.
pub fn remove_sink(id: SinkId) -> Option<Arc<dyn Sink>> {
    let mut reg = registry();
    let pos = reg.sinks.iter().position(|(sid, _)| *sid == id.0)?;
    let (_, sink) = reg.sinks.remove(pos);
    recompute_interest(&reg);
    Some(sink)
}

/// Flushes every attached sink (drivers call this before exiting — statics
/// never drop, so buffered sink state would otherwise be lost).
pub fn flush_sinks() {
    let sinks: Vec<Arc<dyn Sink>> = registry().sinks.iter().map(|(_, s)| s.clone()).collect();
    for s in sinks {
        s.flush();
    }
}

/// Re-evaluates span interest (called by sinks whose interest is dynamic,
/// e.g. the stderr sink after a level change).
pub fn refresh_interest() {
    let reg = registry();
    recompute_interest(&reg);
}

/// Ensures the process-wide stderr sink is attached and sets its level.
///
/// Drivers call this first thing in `main` (default `LevelFilter::Info`) and
/// again once `--log-level` is parsed. Idempotent.
pub fn init_stderr(filter: LevelFilter) {
    let sink = STDERR.get_or_init(|| {
        let sink = Arc::new(StderrSink::new(filter));
        add_sink(sink.clone());
        sink
    });
    sink.set_level(filter);
    refresh_interest();
}

/// Attaches a `piccolo-events/v1` JSONL sink writing to `path` (`--events`).
///
/// # Errors
///
/// Propagates the error from creating/truncating the file.
pub fn add_events_file(path: &Path) -> std::io::Result<SinkId> {
    Ok(add_sink(Arc::new(sink::JsonlSink::create(path)?)))
}

/// Like [`add_events_file`], but with a rotation cap (`--events-max-bytes`):
/// when a write would push the file past `max_bytes`, it rotates to `<path>.1`
/// and a fresh generation starts with its own schema header. See
/// [`sink::JsonlSink::create_with_limit`].
///
/// # Errors
///
/// Propagates the error from creating/truncating the file.
pub fn add_events_file_with_limit(path: &Path, max_bytes: Option<u64>) -> std::io::Result<SinkId> {
    Ok(add_sink(Arc::new(sink::JsonlSink::create_with_limit(
        path, max_bytes,
    )?)))
}

/// Attaches the live progress renderer (`--progress`).
pub fn add_progress() -> SinkId {
    add_sink(Arc::new(progress::ProgressSink::new()))
}

fn dispatch(make: impl FnOnce(u64, u64) -> Event) {
    let mut reg = registry();
    // Stamp time *inside* the lock: seq order and t_ns order agree in every
    // sink, so the event log is monotone in both (events-check enforces this).
    let t_ns = now_ns();
    reg.seq += 1;
    let event = make(reg.seq, t_ns);
    for (_, sink) in &reg.sinks {
        sink.emit(&event);
    }
}

/// Emits a log line at `level`. With no sink attached this is a no-op.
pub fn log(level: Level, msg: impl Into<String>) {
    if SINK_COUNT.load(Ordering::Acquire) == 0 {
        return;
    }
    let msg = msg.into();
    dispatch(|seq, t_ns| Event {
        seq,
        t_ns,
        kind: EventKind::Log { level, msg },
    });
}

/// Logs at [`Level::Error`].
pub fn error(msg: impl Into<String>) {
    log(Level::Error, msg);
}
/// Logs at [`Level::Warn`].
pub fn warn(msg: impl Into<String>) {
    log(Level::Warn, msg);
}
/// Logs at [`Level::Info`].
pub fn info(msg: impl Into<String>) {
    log(Level::Info, msg);
}
/// Logs at [`Level::Debug`].
pub fn debug(msg: impl Into<String>) {
    log(Level::Debug, msg);
}

/// Whether span/point emission is currently live (some sink wants spans).
/// Instrumentation can use this to skip building expensive fields.
#[must_use]
pub fn spans_enabled() -> bool {
    SPAN_INTEREST.load(Ordering::Acquire)
}

/// An explicit span guard. Closes (emitting a `close` event) on [`Span::close`]
/// or on drop, whichever comes first, so panics cannot leave a span open.
///
/// Guards are thread-affine (`!Send`): the open and the close must happen on
/// the same thread, which is what keeps the per-thread parent inference in
/// [`span`] correct. Pass [`Span::id`] to [`span_with_parent`] /
/// [`point_with_parent`] to parent work running on *other* threads.
#[derive(Debug)]
pub struct Span {
    live: bool,
    id: u64,
    name: &'static str,
    start_ns: u64,
    _not_send: PhantomData<*const ()>,
}

/// Opens a span named `name`; the parent is the innermost span still open on
/// the *current thread* (explicit cross-thread parents: [`span_with_parent`]).
pub fn span(name: &'static str, fields: Fields) -> Span {
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    span_with_parent(name, parent, fields)
}

/// Opens a span with an explicit parent id (`None` for a root span).
pub fn span_with_parent(name: &'static str, parent: Option<u64>, fields: Fields) -> Span {
    if !spans_enabled() {
        return Span {
            live: false,
            id: 0,
            name,
            start_ns: 0,
            _not_send: PhantomData,
        };
    }
    let (id, start_ns) = {
        let mut reg = registry();
        let start_ns = now_ns();
        reg.seq += 1;
        reg.next_span += 1;
        let id = reg.next_span - 1;
        let event = Event {
            seq: reg.seq,
            t_ns: start_ns,
            kind: EventKind::Open {
                span: name,
                id,
                parent,
                fields,
            },
        };
        for (_, sink) in &reg.sinks {
            sink.emit(&event);
        }
        (id, start_ns)
    };
    SPAN_STACK.with(|s| s.borrow_mut().push(id));
    Span {
        live: true,
        id,
        name,
        start_ns,
        _not_send: PhantomData,
    }
}

impl Span {
    /// The span's id, for parenting work on other threads. `None` while
    /// emission is disabled.
    #[must_use]
    pub fn id(&self) -> Option<u64> {
        self.live.then_some(self.id)
    }

    /// Closes the span now, attaching `fields` to the close event.
    pub fn close(mut self, fields: Fields) {
        self.emit_close(fields);
    }

    fn emit_close(&mut self, fields: Fields) {
        if !self.live {
            return;
        }
        self.live = false;
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            if let Some(pos) = stack.iter().rposition(|&id| id == self.id) {
                stack.remove(pos);
            }
        });
        let dur_ns = now_ns().saturating_sub(self.start_ns);
        let (name, id) = (self.name, self.id);
        dispatch(|seq, t_ns| Event {
            seq,
            t_ns,
            kind: EventKind::Close {
                span: name,
                id,
                dur_ns,
                fields,
            },
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.emit_close(Vec::new());
    }
}

/// Emits a point event parented to the innermost open span on this thread.
pub fn point(name: &'static str, fields: Fields) {
    let parent = SPAN_STACK.with(|s| s.borrow().last().copied());
    point_with_parent(name, parent, fields);
}

/// Emits a point event with an explicit parent id.
pub fn point_with_parent(name: &'static str, parent: Option<u64>, fields: Fields) {
    if !spans_enabled() {
        return;
    }
    dispatch(|seq, t_ns| Event {
        seq,
        t_ns,
        kind: EventKind::Point {
            name,
            parent,
            fields,
        },
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sink::CollectSink;

    // The registry is process-global; obs unit tests that attach sinks
    // serialize on this lock so concurrently running tests cannot observe
    // each other's events.
    pub(crate) static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn spans_nest_and_balance_with_parent_inference() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let collect = Arc::new(CollectSink::default());
        let id = add_sink(collect.clone());

        let outer = span("campaign", vec![("units", 2u64.into())]);
        let outer_id = outer.id().unwrap();
        {
            let inner = span("unit", vec![("unit", 0u64.into())]);
            assert_ne!(inner.id(), Some(outer_id));
            point("graph_evict", vec![("spec", "g".into())]);
        } // inner closes by drop
        outer.close(vec![("done", true.into())]);

        remove_sink(id);
        let events = collect.take();
        assert_eq!(events.len(), 5);
        let (mut opens, mut closes) = (Vec::new(), Vec::new());
        for e in &events {
            match &e.kind {
                EventKind::Open {
                    span, id, parent, ..
                } => opens.push((*span, *id, *parent)),
                EventKind::Close { span, id, .. } => closes.push((*span, *id)),
                EventKind::Point { name, parent, .. } => {
                    assert_eq!(*name, "graph_evict");
                    // The point nests under the innermost open span.
                    assert_eq!(parent.unwrap(), opens[1].1);
                }
                EventKind::Log { .. } => panic!("no log events emitted"),
            }
        }
        assert_eq!(opens.len(), 2);
        assert_eq!(closes.len(), 2);
        // Parent inference: the unit span nests under the campaign span.
        assert_eq!(opens[1].2, Some(opens[0].1));
        // Sequence numbers are strictly increasing.
        for pair in events.windows(2) {
            assert!(pair[0].seq < pair[1].seq);
        }
    }

    #[test]
    fn disabled_emission_is_inert() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(!spans_enabled());
        let s = span("campaign", vec![]);
        assert_eq!(s.id(), None);
        s.close(vec![]);
        point("graph_evict", vec![]);
        log(Level::Info, "dropped on the floor");
    }

    #[test]
    fn log_events_reach_sinks_even_without_span_interest() {
        let _guard = TEST_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        let collect = Arc::new(CollectSink::logs_only());
        let id = add_sink(collect.clone());
        assert!(!spans_enabled());
        let inert = span("campaign", vec![]);
        assert_eq!(inert.id(), None);
        info("hello");
        remove_sink(id);
        let events = collect.take();
        assert_eq!(events.len(), 1);
        assert!(matches!(
            &events[0].kind,
            EventKind::Log { level: Level::Info, msg } if msg == "hello"
        ));
    }

    #[test]
    fn json_payload_shapes() {
        let e = Event {
            seq: 3,
            t_ns: 1,
            kind: EventKind::Open {
                span: "unit",
                id: 7,
                parent: Some(2),
                fields: vec![("figure", "fig10".into()), ("cost", 9u64.into())],
            },
        };
        assert_eq!(
            e.json_payload(),
            r#"{"seq":3,"t_ns":"1","ev":"open","span":"unit","id":7,"parent":2,"fields":{"figure":"fig10","cost":"9"}}"#
        );
        let e = Event {
            seq: 4,
            t_ns: 2,
            kind: EventKind::Log {
                level: Level::Warn,
                msg: "a \"quoted\" path".to_string(),
            },
        };
        assert_eq!(
            e.json_payload(),
            r#"{"seq":4,"t_ns":"2","ev":"log","level":"warn","msg":"a \"quoted\" path"}"#
        );
    }

    #[test]
    fn level_filter_parses_and_orders() {
        assert_eq!(LevelFilter::parse("quiet"), Some(LevelFilter::Quiet));
        assert_eq!(LevelFilter::parse("debug"), Some(LevelFilter::Debug));
        assert_eq!(LevelFilter::parse("louder"), None);
        assert!(LevelFilter::Info.allows(Level::Error));
        assert!(LevelFilter::Info.allows(Level::Info));
        assert!(!LevelFilter::Info.allows(Level::Debug));
        assert!(!LevelFilter::Quiet.allows(Level::Error));
    }
}
